"""The canonical Table II/III catalogue as declarative experiment data.

These literal dicts are exactly the experiments the hand-written
``if threat_key == ...`` chains in :mod:`repro.core.campaign` used to
construct; the campaign layer now resolves them through the component
registry instead.  Golden regression tests pin the outcomes, so any edit
here that changes a parameter changes measured Table II/III numbers --
treat the values as part of the paper reproduction, not as tunables.

Layout::

    CATALOGUE[threat_key] = {
        "default": <variant name>,
        "variants": {<variant>: {config?, attacks, hooks?, metric}},
    }
    DEFENSE_STACKS[mechanism_key] = {"defenses": [...], "requirements": {}}

Attack ``start_time`` values are config expressions
(``{"$config": "warmup"}``) so the attack window tracks the warmup of
whatever base config a campaign runs with -- the same semantics as the
old ``start_time=base.warmup`` closures.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Optional

from repro.core import taxonomy
from repro.core.experiment import (
    ComponentSpec,
    DefenseStack,
    ExperimentSpec,
    MetricSpec,
)

_WARMUP = {"$config": "warmup"}

CATALOGUE: dict = {
    "sybil": {
        "default": "ghost-joins",
        "variants": {
            "ghost-joins": {
                "config": {"joiner": True, "joiner_delay": 55.0,
                           "max_members": 10},
                "attacks": [{"component": "sybil",
                             "params": {"start_time": _WARMUP,
                                        "n_ghosts": 6}}],
                "metric": {"name": "roster_inflation",
                           "lower_is_better": True},
            },
            # Highway variant: one attacker shops the same ghost
            # identities to two co-existing platoons at once.
            "highway-ghost-shopping": {
                "config": {"highway": {
                    "lanes": 2,
                    "platoons": [
                        {"n_vehicles": 3, "lane": 0,
                         "start_position": 1120.0},
                        {"n_vehicles": 3, "lane": 0,
                         "start_position": 1000.0},
                    ],
                    "background_density": 1.0,
                    "merge_policy": "none"}},
                "attacks": [{"component": "multi_sybil",
                             "params": {"start_time": _WARMUP,
                                        "n_ghosts": 3}}],
                "metric": {"name": "packet_delivery_ratio",
                           "lower_is_better": False},
            },
        },
    },
    "fake_maneuver": {
        "default": "split",
        "variants": {
            "entrance": {
                "attacks": [{"component": "fake_maneuver",
                             "params": {"start_time": _WARMUP,
                                        "mode": "entrance",
                                        "interval": 8.0}}],
                "metric": {"name": "gap_open_time_s",
                           "lower_is_better": True},
            },
            "leave": {
                "attacks": [{"component": "fake_maneuver",
                             "params": {"start_time": _WARMUP,
                                        "mode": "leave",
                                        "interval": 8.0}}],
                # more members remaining is better
                "metric": {"name": "members_remaining",
                           "lower_is_better": False},
            },
            "split": {
                "attacks": [{"component": "fake_maneuver",
                             "params": {"start_time": _WARMUP,
                                        "mode": "split",
                                        "interval": 15.0}}],
                "metric": {"name": "platoon_fragments",
                           "lower_is_better": True},
            },
        },
    },
    "replay": {
        "default": "gap-command-replay",
        "variants": {
            "gap-command-replay": {
                "attacks": [{"component": "replay",
                             "params": {"start_time": _WARMUP,
                                        "target": "all"}}],
                "hooks": [{"component": "gap_cycle"}],
                "metric": {"name": "gap_open_time_s",
                           "lower_is_better": True},
            },
        },
    },
    "jamming": {
        "default": "barrage-30dBm",
        "variants": {
            "barrage-30dBm": {
                "attacks": [{"component": "jamming",
                             "params": {"start_time": _WARMUP,
                                        "power_dbm": 30.0}}],
                "metric": {"name": "degraded_fraction",
                           "lower_is_better": True},
            },
            # Highway variant: a jammer parked on the seam between two
            # merging platoons starves the leader-to-leader negotiation.
            # The rear platoon closes at 4 m/s and reaches merge range
            # ~26 s in, well inside the jamming window, so the baseline
            # merges and the jammed episode does not.
            "highway-merge-point": {
                "config": {"highway": {
                    "lanes": 2,
                    "platoons": [
                        {"n_vehicles": 3, "lane": 0,
                         "start_position": 1250.0},
                        {"n_vehicles": 3, "lane": 0,
                         "start_position": 1000.0, "speed": 31.0},
                    ],
                    "background_density": 1.0,
                    "merge_policy": "auto",
                    "merge_range": 100.0}},
                "attacks": [{"component": "merge_jamming",
                             "params": {"start_time": _WARMUP,
                                        "power_dbm": 30.0}}],
                "metric": {"name": "packet_delivery_ratio",
                           "lower_is_better": False},
            },
        },
    },
    "eavesdropping": {
        "default": "roadside-capture",
        "variants": {
            "roadside-capture": {
                "attacks": [{"component": "eavesdropping",
                             "params": {"start_time": _WARMUP}}],
                "metric": {"name": "route_coverage",
                           "lower_is_better": True},
            },
        },
    },
    "dos": {
        "default": "join-flood",
        "variants": {
            "join-flood": {
                "config": {"joiner": True,
                           "joiner_delay": {"$config": "warmup",
                                            "plus": 15.0},
                           "max_pending": 4},
                "attacks": [{"component": "dos",
                             "params": {"start_time": _WARMUP,
                                        "rate_hz": 5.0}}],
                "metric": {"name": "joins_completed",
                           "lower_is_better": False},
            },
        },
    },
    "impersonation": {
        "default": "stolen-id",
        "variants": {
            "stolen-id": {
                "attacks": [{"component": "impersonation",
                             "params": {"start_time": _WARMUP,
                                        "steal_key": False}}],
                "metric": {"name": "victim_expelled",
                           "lower_is_better": True},
            },
            "stolen-key": {
                "attacks": [{"component": "impersonation",
                             "params": {"start_time": _WARMUP,
                                        "steal_key": True}}],
                "metric": {"name": "victim_expelled",
                           "lower_is_better": True},
            },
        },
    },
    "sensor_spoofing": {
        "default": "blind+tpms",
        "variants": {
            "blind+tpms": {
                "attacks": [{"component": "sensor_spoofing",
                             "params": {"start_time": _WARMUP,
                                        "spoof_tpms": True}}],
                "metric": {"name": "tpms_warnings",
                           "lower_is_better": True},
            },
            "gps": {
                "attacks": [{"component": "gps_spoofing",
                             "params": {"start_time": _WARMUP,
                                        "drift_rate": 2.0}}],
                "metric": {"name": "mean_beacon_error_m",
                           "lower_is_better": True},
            },
        },
    },
    "malware": {
        "default": "wireless",
        "variants": {
            "wireless": {
                "attacks": [{"component": "malware",
                             "params": {"start_time": _WARMUP,
                                        "vectors": ["wireless"]}}],
                "metric": {"name": "infected_at_end",
                           "lower_is_better": True},
            },
            "obd": {
                "attacks": [{"component": "malware",
                             "params": {"start_time": _WARMUP,
                                        "vectors": ["obd"]}}],
                "metric": {"name": "infected_at_end",
                           "lower_is_better": True},
            },
            "media": {
                "attacks": [{"component": "malware",
                             "params": {"start_time": _WARMUP,
                                        "vectors": ["media"]}}],
                "metric": {"name": "infected_at_end",
                           "lower_is_better": True},
            },
        },
    },
    "falsification": {
        "default": "oscillate",
        "variants": {
            "oscillate": {
                "attacks": [{"component": "falsification",
                             "params": {"start_time": _WARMUP,
                                        "profile": "oscillate",
                                        "amplitude": 2.5}}],
                "metric": {"name": "mean_abs_spacing_error",
                           "lower_is_better": True},
            },
            "offset": {
                "attacks": [{"component": "falsification",
                             "params": {"start_time": _WARMUP,
                                        "profile": "offset",
                                        "amplitude": 2.5}}],
                "metric": {"name": "mean_abs_spacing_error",
                           "lower_is_better": True},
            },
            "brake": {
                "attacks": [{"component": "falsification",
                             "params": {"start_time": _WARMUP,
                                        "profile": "brake",
                                        "amplitude": 2.5}}],
                "metric": {"name": "mean_abs_spacing_error",
                           "lower_is_better": True},
            },
        },
    },
}


DEFENSE_STACKS: dict = {
    "secret_public_keys": {
        "defenses": [{"component": "group_key_auth",
                      "params": {"encrypt": True}},
                     {"component": "freshness"}],
        "requirements": {},
    },
    "roadside_units": {
        "defenses": [{"component": "rsu_key_distribution"},
                     {"component": "group_key_auth",
                      "params": {"encrypt": True}}],
        "requirements": {"with_authority": True,
                         "rsu_positions": [1200.0, 2400.0, 3600.0,
                                           4800.0, 6000.0],
                         "rsu_coverage": 800.0},
    },
    "control_algorithms": {
        "defenses": [{"component": "vpd_ada", "params": {"expel": True}},
                     {"component": "resilient_control"}],
        "requirements": {},
    },
    "hybrid_communications": {
        "defenses": [{"component": "hybrid_vlc"}],
        "requirements": {"with_vlc": True},
    },
    "onboard_security": {
        "defenses": [{"component": "onboard_hardening"}],
        "requirements": {},
    },
    "trust_management": {
        "defenses": [{"component": "trust_management"},
                     {"component": "vpd_ada"}],
        "requirements": {},
    },
}


# --------------------------------------------------------------------------
# Accessors
# --------------------------------------------------------------------------

def variant_names(threat_key: str) -> list:
    """The catalogued variants for one threat (default first)."""
    entry = _catalogue_entry(threat_key)
    default = entry["default"]
    return [default] + sorted(v for v in entry["variants"] if v != default)


def _catalogue_entry(threat_key: str) -> dict:
    try:
        return CATALOGUE[threat_key]
    except KeyError:
        raise KeyError(f"unknown threat {threat_key!r}; expected one of "
                       f"{sorted(taxonomy.THREATS)}") from None


@lru_cache(maxsize=None)
def experiment_spec(threat_key: str,
                    variant: Optional[str] = None) -> ExperimentSpec:
    """The canonical :class:`ExperimentSpec` for a threat (and variant).

    ``variant=None`` selects the threat's default variant.  Unknown
    threats raise ``KeyError`` (the historical ``threat_experiment``
    contract); unknown variants raise ``ValueError`` naming the valid
    ones -- no silent fallbacks.
    """
    entry = _catalogue_entry(threat_key)
    variant = variant or entry["default"]
    if variant not in entry["variants"]:
        raise ValueError(f"unknown {threat_key} variant {variant!r}; valid "
                         f"variants: {variant_names(threat_key)}")
    data = entry["variants"][variant]
    return ExperimentSpec(
        threat=threat_key,
        variant=variant,
        config=dict(data.get("config", {})),
        attacks=tuple(ComponentSpec.from_dict(c, "attack")
                      for c in data["attacks"]),
        hooks=tuple(ComponentSpec.from_dict(c, "hook")
                    for c in data.get("hooks", ())),
        metric=MetricSpec.from_dict(data["metric"]))


@lru_cache(maxsize=None)
def defense_stack(mechanism_key: str) -> DefenseStack:
    """The canonical :class:`DefenseStack` for a Table III mechanism.

    Unknown mechanisms raise ``KeyError`` (the historical
    ``make_defenses`` contract).
    """
    try:
        data = DEFENSE_STACKS[mechanism_key]
    except KeyError:
        raise KeyError(f"unknown mechanism {mechanism_key!r}; expected one "
                       f"of {sorted(taxonomy.MECHANISMS)}") from None
    requirements = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data["requirements"].items()}
    return DefenseStack(
        mechanism=mechanism_key,
        defenses=tuple(ComponentSpec.from_dict(c, "defense")
                       for c in data["defenses"]),
        requirements=requirements)


def iter_experiment_specs() -> Iterator[tuple]:
    """Yield ``(threat, variant, is_default, spec)`` over the catalogue."""
    for threat_key in CATALOGUE:
        default = CATALOGUE[threat_key]["default"]
        for variant in variant_names(threat_key):
            yield (threat_key, variant, variant == default,
                   experiment_spec(threat_key, variant))


def iter_defense_stacks() -> Iterator[tuple]:
    """Yield ``(mechanism, stack)`` over the defence-stack table."""
    for mechanism_key in DEFENSE_STACKS:
        yield mechanism_key, defense_stack(mechanism_key)


def check_catalogue_complete() -> list:
    """Structural problems in the catalogue, empty when healthy.

    Verifies that every taxonomy threat and mechanism resolves through
    the registry-backed catalogue, and that every catalogued spec builds.
    """
    problems: list = []
    for threat_key in taxonomy.THREATS:
        if threat_key not in CATALOGUE:
            problems.append(f"threat {threat_key!r} has no catalogued "
                            "experiment")
            continue
        for variant in variant_names(threat_key):
            try:
                experiment_spec(threat_key, variant)
            except (KeyError, ValueError) as exc:
                problems.append(f"experiment {threat_key}/{variant} does "
                                f"not resolve: {exc}")
    for extra in set(CATALOGUE) - set(taxonomy.THREATS):
        problems.append(f"catalogue names unknown threat {extra!r}")
    for mechanism_key in taxonomy.MECHANISMS:
        if mechanism_key not in DEFENSE_STACKS:
            problems.append(f"mechanism {mechanism_key!r} has no defence "
                            "stack")
            continue
        try:
            defense_stack(mechanism_key)
        except (KeyError, ValueError) as exc:
            problems.append(f"defence stack {mechanism_key} does not "
                            f"resolve: {exc}")
    for extra in set(DEFENSE_STACKS) - set(taxonomy.MECHANISMS):
        problems.append("defence-stack table names unknown mechanism "
                        f"{extra!r}")
    return problems
