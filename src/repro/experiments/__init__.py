"""The canonical experiment catalogue: Table II/III as declarative data.

``CATALOGUE`` and ``DEFENSE_STACKS`` are the literal-data form of the
paper's canonical experiments; :func:`experiment_spec` and
:func:`defense_stack` resolve them through the component registry into
:class:`~repro.core.experiment.ExperimentSpec` /
:class:`~repro.core.experiment.DefenseStack` objects.  The campaign
layer (``threat_experiment`` / ``make_defenses``) is a thin wrapper over
these accessors.
"""

from repro.experiments.catalog import (
    CATALOGUE,
    DEFENSE_STACKS,
    check_catalogue_complete,
    defense_stack,
    experiment_spec,
    iter_defense_stacks,
    iter_experiment_specs,
    variant_names,
)

__all__ = [
    "CATALOGUE",
    "DEFENSE_STACKS",
    "check_catalogue_complete",
    "defense_stack",
    "experiment_spec",
    "iter_defense_stacks",
    "iter_experiment_specs",
    "variant_names",
]
