"""Shared event log.

A flat, queryable record of everything notable that happens in a scenario:
manoeuvre protocol steps, controller degradations, disbands, attack
actions, detections.  The metrics layer computes most of its figures from
this log, and tests assert against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


def coerce_jsonable(value: Any) -> Any:
    """Coerce a value into plain-JSON types.

    Event payloads end up in persistent JSONL traces and cached episode
    records, so everything recorded must serialise: numpy scalars (the
    metrics layer hands those around) unwrap via ``.item()``, sets sort
    into lists, tuples become lists, mappings recurse.  Anything else
    falls back to ``repr`` rather than raising at trace-write time.
    """
    # Exact-type check: numpy's float64 *subclasses* float (and would
    # sneak through an isinstance test still wrapped), so only genuinely
    # plain values take the fast path.
    if value is None or type(value) in (bool, int, float, str):
        return value
    if hasattr(value, "item") and not isinstance(value, bytes):
        try:
            item = value.item()                    # numpy scalars unwrap
        except (TypeError, ValueError):
            pass
        else:
            if item is not value:
                return coerce_jsonable(item)
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return str(value)
    if isinstance(value, dict):
        return {str(k): coerce_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [coerce_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        try:
            ordered = sorted(value)
        except TypeError:
            ordered = sorted(value, key=repr)
        return [coerce_jsonable(v) for v in ordered]
    return repr(value)


@dataclass(frozen=True)
class LoggedEvent:
    time: float
    kind: str
    source: str
    data: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<{self.kind} t={self.time:.2f} src={self.source} {self.data}>"


class EventLog:
    """Append-only event record with simple query helpers.

    Payload values are coerced to plain-JSON types *at record time* (see
    :func:`coerce_jsonable`): a numpy scalar slipped into ``data`` used
    to poison every later consumer that serialises the log (traces, the
    episode cache); now it is unwrapped before it is stored.
    """

    def __init__(self) -> None:
        self._events: list[LoggedEvent] = []

    def record(self, time: float, kind: str, source: str, **data: Any) -> LoggedEvent:
        event = LoggedEvent(time=float(time), kind=kind, source=source,
                            data={k: coerce_jsonable(v) for k, v in data.items()})
        self._events.append(event)
        return event

    def all(self) -> list[LoggedEvent]:
        return list(self._events)

    def of_kind(self, *kinds: str) -> list[LoggedEvent]:
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def from_source(self, source: str) -> list[LoggedEvent]:
        return [e for e in self._events if e.source == source]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def first(self, kind: str) -> Optional[LoggedEvent]:
        for e in self._events:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> Optional[LoggedEvent]:
        for e in reversed(self._events):
            if e.kind == kind:
                return e
        return None

    def between(self, t0: float, t1: float) -> list[LoggedEvent]:
        return [e for e in self._events if t0 <= e.time <= t1]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LoggedEvent]:
        return iter(self._events)
