"""Shared event log.

A flat, queryable record of everything notable that happens in a scenario:
manoeuvre protocol steps, controller degradations, disbands, attack
actions, detections.  The metrics layer computes most of its figures from
this log, and tests assert against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class LoggedEvent:
    time: float
    kind: str
    source: str
    data: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<{self.kind} t={self.time:.2f} src={self.source} {self.data}>"


class EventLog:
    """Append-only event record with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[LoggedEvent] = []

    def record(self, time: float, kind: str, source: str, **data: Any) -> LoggedEvent:
        event = LoggedEvent(time=time, kind=kind, source=source, data=dict(data))
        self._events.append(event)
        return event

    def all(self) -> list[LoggedEvent]:
        return list(self._events)

    def of_kind(self, *kinds: str) -> list[LoggedEvent]:
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def from_source(self, source: str) -> list[LoggedEvent]:
        return [e for e in self._events if e.source == source]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def first(self, kind: str) -> Optional[LoggedEvent]:
        for e in self._events:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> Optional[LoggedEvent]:
        for e in reversed(self._events):
            if e.kind == kind:
                return e
        return None

    def between(self, t0: float, t1: float) -> list[LoggedEvent]:
        return [e for e in self._events if t0 <= e.time <= t1]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LoggedEvent]:
        return iter(self._events)
