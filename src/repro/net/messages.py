"""V2X message types exchanged inside a platoon.

Messages model the CAM/BSM beacons and the manoeuvre-coordination traffic
that the paper's attacks target.  Every message has a canonical byte
encoding (:meth:`Message.signing_bytes`) so the security layer can compute
MACs and signatures over exactly the fields an attacker could tamper with.

The security *envelope* fields (``auth_tag``, ``signature``, ``cert``,
``nonce``) live on the base class but are excluded from the signed bytes;
they are filled in by :mod:`repro.core.defenses.message_auth` and verified
on reception.
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Any, Optional


class MessageType(enum.Enum):
    """Top-level classification of platoon traffic."""

    BEACON = "beacon"
    MANEUVER = "maneuver"
    KEY_DISTRIBUTION = "key_distribution"
    DATA = "data"


class ManeuverType(enum.Enum):
    """Manoeuvre-coordination message kinds (join / leave / split protocol)."""

    JOIN_REQUEST = "join_request"
    JOIN_ACCEPT = "join_accept"
    JOIN_REJECT = "join_reject"
    GAP_OPEN = "gap_open"          # leader asks a member to open a gap for a joiner
    GAP_READY = "gap_ready"        # member reports the gap is open
    GAP_CLOSE = "gap_close"        # leader asks a member to close its gap
    ROSTER = "roster"              # leader broadcasts the membership roster
    JOIN_COMPLETE = "join_complete"
    LEAVE_REQUEST = "leave_request"
    LEAVE_ACCEPT = "leave_accept"
    LEAVE_COMPLETE = "leave_complete"
    SPLIT_COMMAND = "split_command"  # platoon splits at a given member
    DISSOLVE = "dissolve"            # leader disbands the platoon
    SPEED_COMMAND = "speed_command"  # leader-issued cruise speed change
    MERGE_REQUEST = "merge_request"  # rear leader asks to merge into front
    MERGE_ACCEPT = "merge_accept"
    MERGE_REJECT = "merge_reject"
    MERGE_COMMIT = "merge_commit"    # rear leader commits its members over
    PLATOON_ANNOUNCE = "platoon_announce"  # leader advertises its platoon to neighbours


_msg_seq = itertools.count(1)


def _next_seq() -> int:
    return next(_msg_seq)


def reset_message_seq() -> None:
    """Restart the process-wide sequence counter.

    ``seq`` is covered by :meth:`Message.signing_bytes`, so its decimal
    width feeds :meth:`Message.size_bits` and therefore airtime.  Episodes
    must call this at construction time: otherwise the counter carries
    over from earlier episodes in the same process and identically-seeded
    runs diverge at the MAC layer.
    """
    global _msg_seq
    _msg_seq = itertools.count(1)


@dataclass
class Message:
    """Base class for all over-the-air messages.

    Attributes
    ----------
    sender_id:
        The *claimed* sender identity.  Impersonation and Sybil attacks
        forge this field; authenticity defences bind it to a key or
        certificate.
    timestamp:
        The *claimed* creation time.  Replay defences check it against the
        receive time.
    seq:
        A per-process unique sequence number (monotone across the run).
    """

    sender_id: str
    timestamp: float
    seq: int = field(default_factory=_next_seq)
    msg_type: MessageType = MessageType.DATA
    payload: dict = field(default_factory=dict)
    # -- security envelope (not covered by signing_bytes) ------------------
    auth_tag: Optional[bytes] = None      # symmetric MAC (group key)
    signature: Optional[bytes] = None     # asymmetric signature (PKI)
    cert: Optional[Any] = None            # certificate presented with signature
    nonce: Optional[int] = None           # anti-replay nonce
    vlc_copy: bool = False                # True when this copy travelled over VLC

    _ENVELOPE_FIELDS = ("auth_tag", "signature", "cert", "nonce", "vlc_copy")

    def signing_bytes(self) -> bytes:
        """Canonical byte encoding of all authenticated fields.

        The encoding is a JSON object with sorted keys covering every
        dataclass field except the security envelope.  Any tampering with a
        covered field changes these bytes and therefore invalidates MACs
        and signatures computed over them.
        """
        body: dict[str, Any] = {}
        for f in fields(self):
            if f.name in self._ENVELOPE_FIELDS:
                continue
            value = getattr(self, f.name)
            if isinstance(value, enum.Enum):
                value = value.value
            body[f.name] = value
        if self.nonce is not None:
            body["nonce"] = self.nonce
        return json.dumps(body, sort_keys=True, default=str).encode()

    def size_bits(self) -> int:
        """Approximate on-air size, used for airtime computation."""
        overhead_bits = 8 * 64  # headers + envelope
        return 8 * len(self.signing_bytes()) + overhead_bits

    def copy(self) -> "Message":
        """Deep-ish copy used by replay/falsification attacks.

        The payload dict is copied so an attacker mutating the copy does
        not silently rewrite the victim's original message.
        """
        import copy as _copy

        return _copy.deepcopy(self)

    def describe(self) -> str:
        return (f"{type(self).__name__}(from={self.sender_id}, t={self.timestamp:.3f}, "
                f"seq={self.seq})")


@dataclass
class Beacon(Message):
    """Periodic cooperative-awareness beacon (CAM/BSM-like).

    Carries exactly the state the paper lists as shared inside a platoon:
    position, speed, change of speed (acceleration) and heading, plus
    platoon bookkeeping used by the CACC controllers.
    """

    position: float = 0.0         # longitudinal road coordinate [m]
    speed: float = 0.0            # [m/s]
    acceleration: float = 0.0     # [m/s^2]
    heading: float = 0.0          # [rad]; 0 = along the road
    lane: int = 0
    platoon_id: Optional[str] = None
    platoon_index: Optional[int] = None   # 0 = leader
    is_leader: bool = False

    def __post_init__(self) -> None:
        self.msg_type = MessageType.BEACON


@dataclass
class ManeuverMessage(Message):
    """Join/leave/split coordination message.

    ``maneuver`` is the protocol step; ``target_id`` identifies the vehicle
    the step applies to (e.g. which member must open a gap, or where the
    platoon splits).
    """

    maneuver: ManeuverType = ManeuverType.JOIN_REQUEST
    platoon_id: Optional[str] = None
    target_id: Optional[str] = None
    gap_size: float = 0.0          # requested inter-vehicle gap for entrances [m]
    split_index: Optional[int] = None
    speed: Optional[float] = None  # for SPEED_COMMAND

    def __post_init__(self) -> None:
        self.msg_type = MessageType.MANEUVER


@dataclass
class KeyDistributionMessage(Message):
    """RSU/TA key-distribution traffic (group key handout, revocation)."""

    key_id: Optional[str] = None
    encrypted_key: Optional[bytes] = None
    revoked_ids: tuple = ()
    recipient_id: Optional[str] = None

    def __post_init__(self) -> None:
        self.msg_type = MessageType.KEY_DISTRIBUTION

    def signing_bytes(self) -> bytes:  # bytes field needs hex encoding
        body = super().signing_bytes()
        return body


def is_beacon(msg: Message) -> bool:
    return msg.msg_type is MessageType.BEACON


def is_maneuver(msg: Message, kind: Optional[ManeuverType] = None) -> bool:
    if msg.msg_type is not MessageType.MANEUVER:
        return False
    if kind is None:
        return True
    return getattr(msg, "maneuver", None) is kind
