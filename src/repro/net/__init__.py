"""V2X network substrate: discrete-event engine, radio channel, MAC and messages.

This package is the from-scratch replacement for the Veins/OMNeT++ network
stack that Plexe builds on.  It provides:

* :mod:`repro.net.simulator` -- a deterministic discrete-event engine.
* :mod:`repro.net.channel` -- an IEEE 802.11p-like broadcast radio channel
  with log-distance path loss, shadowing, Rayleigh fading, SINR-based
  reception and interference (jammer) injection.
* :mod:`repro.net.mac` -- a simplified CSMA/CA medium-access layer.
* :mod:`repro.net.radio` -- per-node radio endpoints.
* :mod:`repro.net.vlc` -- a line-of-sight visible-light channel used by the
  SP-VLC hybrid defence.
* :mod:`repro.net.messages` -- CAM/BSM-like beacons and manoeuvre messages
  with a canonical wire format used by the security layer.
"""

from repro.net.simulator import Event, Simulator
from repro.net.channel import ChannelConfig, RadioChannel
from repro.net.messages import (
    Beacon,
    KeyDistributionMessage,
    ManeuverMessage,
    ManeuverType,
    Message,
    MessageType,
)
from repro.net.radio import Radio
from repro.net.vlc import VlcChannel, VlcConfig

__all__ = [
    "Event",
    "Simulator",
    "ChannelConfig",
    "RadioChannel",
    "Radio",
    "Message",
    "MessageType",
    "Beacon",
    "ManeuverMessage",
    "ManeuverType",
    "KeyDistributionMessage",
    "VlcChannel",
    "VlcConfig",
]
