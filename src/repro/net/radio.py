"""Per-node radio endpoint.

A :class:`Radio` binds a node identity and position source to the shared
:class:`~repro.net.channel.RadioChannel`.  It owns:

* a CSMA/CA MAC transmit path,
* a receive pipeline with pluggable *filters* (this is where the defence
  suite hooks in: message authentication, freshness checks, trust filters
  all register as receive filters),
* *taps* that observe every frame before filtering (eavesdroppers and
  intrusion-detection sensors use taps),
* simple send/receive counters used by the metrics layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.channel import RadioChannel
from repro.net.mac import CsmaMac, MacConfig
from repro.net.messages import Message
from repro.net.simulator import Simulator

RxHandler = Callable[[Message], None]
RxFilter = Callable[[Message], bool]


@dataclass
class RadioStats:
    sent: int = 0
    received: int = 0
    filtered: int = 0   # frames rejected by a receive filter (e.g. bad MAC)


class Radio:
    """A broadcast radio attached to one node.

    Parameters
    ----------
    node_id:
        Unique identity on the channel.  Note this is the *true* hardware
        identity; the ``sender_id`` claimed inside messages can differ
        (that difference is exactly what impersonation and Sybil attacks
        exploit).
    position_fn:
        Callable returning the node's current road coordinate.
    """

    def __init__(self, sim: Simulator, channel: RadioChannel, node_id: str,
                 position_fn: Callable[[], float],
                 tx_power_dbm: Optional[float] = None,
                 mac_config: Optional[MacConfig] = None) -> None:
        self.sim = sim
        self.channel = channel
        self.node_id = node_id
        self._position_fn = position_fn
        self.tx_power_dbm = tx_power_dbm
        # (pool, slot) when the owner's kinematics live in a vector-kernel
        # pool -- lets the channel gather receiver positions as one array
        # read instead of N Python position_fn calls.  Must stay in sync
        # with position_fn (the owning Vehicle sets both at construction).
        self.pool_slot: Optional[tuple] = None
        self.enabled = True
        self.mac = CsmaMac(sim, channel, self, config=mac_config)
        self.stats = RadioStats()
        self._handlers: list[RxHandler] = []
        self._filters: list[RxFilter] = []
        self._taps: list[RxHandler] = []
        channel.register(self)

    def position(self) -> float:
        return self._position_fn()

    # ------------------------------------------------------------------- send

    def send(self, msg: Message) -> bool:
        """Broadcast a message.  Returns False if the MAC dropped it."""
        if not self.enabled:
            return False
        self.stats.sent += 1
        return self.mac.enqueue(msg)

    # ---------------------------------------------------------------- receive

    def on_receive(self, handler: RxHandler) -> None:
        """Register an application-level receive handler."""
        self._handlers.append(handler)

    def clear_handlers(self) -> list[RxHandler]:
        """Detach all application handlers (used by dispatch-replacing
        defences like SP-VLC cross-checking); returns the old handlers."""
        old = self._handlers
        self._handlers = []
        return old

    def add_filter(self, rx_filter: RxFilter) -> None:
        """Register a receive filter; filters run in order, all must accept.

        A filter returning ``False`` drops the frame before it reaches
        handlers.  Defences (message auth, anti-replay, trust) plug in here.
        """
        self._filters.append(rx_filter)

    def remove_filter(self, rx_filter: RxFilter) -> None:
        if rx_filter in self._filters:
            self._filters.remove(rx_filter)

    def add_tap(self, tap: RxHandler) -> None:
        """Register a promiscuous tap that sees frames before filtering."""
        self._taps.append(tap)

    def deliver(self, msg: Message) -> None:
        """Called by the channel when a frame arrives at this radio."""
        if not self.enabled:
            return
        for tap in self._taps:
            tap(msg)
        for rx_filter in self._filters:
            if not rx_filter(msg):
                self.stats.filtered += 1
                return
        self.stats.received += 1
        for handler in self._handlers:
            handler(msg)

    # --------------------------------------------------------------- lifecycle

    def disable(self) -> None:
        """Take the radio off the air (jammed hardware, malware kill, leave)."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def shutdown(self) -> None:
        self.enabled = False
        self.channel.unregister(self)
