"""Visible-light communication (VLC) channel.

Models the optical side of SP-VLC (Ucar et al. [2] in the paper): platoon
members carry headlight/taillight transceivers, so VLC links exist only
between *adjacent* vehicles in the same lane within a short line-of-sight
range.  The properties that make VLC useful as a security channel are
preserved:

* **RF-jamming immunity** -- the channel ignores all RF interferers.
* **Line-of-sight only** -- a message reaches at most the nearest vehicle
  ahead and behind; multi-hop delivery requires explicit relaying (done by
  the hybrid defence).
* **Ambient-light outages** -- each delivery independently fails with a
  configurable probability, modelling sunlight interference the paper
  mentions; an optical jammer (bright light source) can also be attached,
  raising the outage probability for vehicles it illuminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.messages import Message
from repro.net.simulator import Simulator


@dataclass
class VlcConfig:
    max_range_m: float = 40.0           # usable headlight/taillight LoS range
    ambient_outage_prob: float = 0.01   # per-delivery loss from ambient light
    latency_s: float = 0.002            # modulation + decoding latency
    same_lane_only: bool = True


@dataclass
class VlcStats:
    transmissions: int = 0
    delivered: int = 0
    lost_outage: int = 0
    lost_range: int = 0

    @property
    def delivery_ratio(self) -> float:
        attempts = self.delivered + self.lost_outage
        if attempts == 0:
            return 1.0
        return self.delivered / attempts


class VlcEndpoint:
    """Optical transceiver on one vehicle."""

    def __init__(self, channel: "VlcChannel", node_id: str,
                 position_fn: Callable[[], float],
                 lane_fn: Optional[Callable[[], int]] = None) -> None:
        self.channel = channel
        self.node_id = node_id
        self._position_fn = position_fn
        self._lane_fn = lane_fn or (lambda: 0)
        self.enabled = True
        self._handlers: list[Callable[[Message], None]] = []
        channel.register(self)

    def position(self) -> float:
        return self._position_fn()

    def lane(self) -> int:
        return self._lane_fn()

    def send(self, msg: Message) -> None:
        if self.enabled:
            self.channel.transmit(self, msg)

    def on_receive(self, handler: Callable[[Message], None]) -> None:
        self._handlers.append(handler)

    def deliver(self, msg: Message) -> None:
        if not self.enabled:
            return
        for handler in self._handlers:
            handler(msg)


class OpticalJammer:
    """A bright light source that raises the outage probability nearby.

    Unlike RF jamming this is hard to do covertly at highway speed -- the
    paper treats VLC as robust to RF jamming but notes external light can
    block it; this class lets experiments quantify that residual risk.
    """

    def __init__(self, position: float, radius_m: float = 30.0,
                 outage_prob: float = 0.9) -> None:
        self.position = position
        self.radius_m = radius_m
        self.outage_prob = outage_prob
        self.active = True

    def outage_at(self, position: float) -> float:
        if not self.active:
            return 0.0
        if abs(position - self.position) <= self.radius_m:
            return self.outage_prob
        return 0.0


class VlcChannel:
    """Shared optical medium.  Delivers only to adjacent same-lane vehicles."""

    def __init__(self, sim: Simulator, config: Optional[VlcConfig] = None) -> None:
        self.sim = sim
        self.config = config or VlcConfig()
        self._endpoints: dict[str, VlcEndpoint] = {}
        self._optical_jammers: list[OpticalJammer] = []
        self.stats = VlcStats()

    def register(self, endpoint: VlcEndpoint) -> None:
        if endpoint.node_id in self._endpoints:
            raise ValueError(f"duplicate VLC endpoint {endpoint.node_id!r}")
        self._endpoints[endpoint.node_id] = endpoint

    def unregister(self, endpoint: VlcEndpoint) -> None:
        self._endpoints.pop(endpoint.node_id, None)

    def add_optical_jammer(self, jammer: OpticalJammer) -> None:
        self._optical_jammers.append(jammer)

    def _neighbours(self, sender: VlcEndpoint) -> list[VlcEndpoint]:
        """Nearest endpoint ahead and behind within LoS range (same lane)."""
        pos = sender.position()
        lane = sender.lane()
        ahead: Optional[VlcEndpoint] = None
        behind: Optional[VlcEndpoint] = None
        for ep in self._endpoints.values():
            if ep is sender or not ep.enabled:
                continue
            if self.config.same_lane_only and ep.lane() != lane:
                continue
            delta = ep.position() - pos
            if 0 < delta <= self.config.max_range_m:
                if ahead is None or ep.position() < ahead.position():
                    ahead = ep
            elif 0 > delta >= -self.config.max_range_m:
                if behind is None or ep.position() > behind.position():
                    behind = ep
        return [ep for ep in (ahead, behind) if ep is not None]

    def transmit(self, sender: VlcEndpoint, msg: Message) -> None:
        self.stats.transmissions += 1
        neighbours = self._neighbours(sender)
        if not neighbours:
            self.stats.lost_range += 1
            return
        for receiver in neighbours:
            outage = self.config.ambient_outage_prob
            for jammer in self._optical_jammers:
                outage = max(outage, jammer.outage_at(receiver.position()))
            if self.sim.rng.random() < outage:
                self.stats.lost_outage += 1
                continue
            copy = msg.copy()
            copy.vlc_copy = True
            self.sim.schedule(self.config.latency_s, receiver.deliver, copy)
            self.stats.delivered += 1
