"""IEEE 802.11p-like broadcast radio channel.

The channel implements the pieces of the physical layer that the paper's
availability attacks exploit:

* **Log-distance path loss** with log-normal shadowing and (optionally)
  Rayleigh fading, parameterised for the 5.9 GHz ITS band.
* **SINR-based reception**: each delivery attempt computes the signal to
  (noise + interference) ratio; interference sums concurrent transmissions
  and any registered *interferers* (jammers).
* **Carrier sensing** support for the CSMA/CA MAC: total in-band power at a
  node, including jammer power, which is how a barrage jammer also starves
  transmit opportunities.
* **Promiscuous reception** so eavesdropper radios can observe traffic that
  is not addressed to them (all platoon traffic is broadcast anyway).

Units: powers in dBm internally converted to mW for summation, distances in
metres, times in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol

from repro.net.messages import Message
from repro.net.simulator import Simulator
from repro.obs import registry as obs

if TYPE_CHECKING:
    from repro.net.radio import Radio


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm.  Zero maps to -inf."""
    if mw <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(mw)


class Interferer(Protocol):
    """Anything that injects RF power into the channel (e.g. a jammer)."""

    def interference_dbm_at(self, position: float, now: float) -> float:
        """Received interference power (dBm) at a road position, or -inf."""
        ...


@dataclass
class ChannelConfig:
    """Physical-layer parameters for the 5.9 GHz ITS band.

    Defaults follow common Veins/Plexe highway parameterisations: free-space
    reference loss at 1 m for 5.89 GHz, a path-loss exponent slightly above
    free space (highway line-of-sight), and a 6 Mbit/s control-channel rate.
    """

    tx_power_dbm: float = 20.0
    reference_loss_db: float = 47.86     # free space at 1 m, 5.89 GHz
    path_loss_exponent: float = 2.2
    shadowing_sigma_db: float = 2.0
    rayleigh_fading: bool = True
    noise_floor_dbm: float = -95.0
    sinr_threshold_db: float = 8.0       # 50% reception point of the PER curve
    per_steepness: float = 1.2           # logistic slope (per dB)
    bitrate_bps: float = 6e6
    propagation_speed: float = 3e8
    max_range_m: float = 1500.0
    carrier_sense_dbm: float = -85.0
    min_distance_m: float = 1.0          # clamp to avoid log(0)
    # Randomness layout for per-attempt fading/success draws:
    #   "shared"   -- legacy: all draws come from the one simulator RNG in
    #                 receiver-registration order (order-dependent).
    #   "pairwise" -- each ordered (sender, receiver) pair owns a counter-
    #                 based stream (repro.net.fading); draws are independent
    #                 of registration order and batchable by the vector
    #                 kernel.  Changes the stochastic stream, so traces
    #                 differ from "shared" (content hashes include it).
    fading_streams: str = "shared"


@dataclass
class ChannelStats:
    """Aggregate channel counters, reset per scenario."""

    transmissions: int = 0
    delivery_attempts: int = 0
    delivered: int = 0
    lost_noise: int = 0          # SINR failure with no interference present
    lost_interference: int = 0   # SINR failure while interference was present
    out_of_range: int = 0

    @property
    def packet_delivery_ratio(self) -> float:
        if self.delivery_attempts == 0:
            return 1.0
        return self.delivered / self.delivery_attempts


@dataclass
class _ActiveTransmission:
    sender: "Radio"
    power_dbm: float
    start: float
    end: float


class RadioChannel:
    """Shared broadcast medium connecting all registered radios.

    Radios are registered with a position callback so moving vehicles are
    handled naturally.  Jammers register as :class:`Interferer` objects and
    contribute to both SINR computation and carrier sensing.
    """

    def __init__(self, sim: Simulator, config: Optional[ChannelConfig] = None) -> None:
        self.sim = sim
        self.config = config or ChannelConfig()
        self._radios: dict[str, "Radio"] = {}
        self._interferers: list[Interferer] = []
        self._active: list[_ActiveTransmission] = []
        self.stats = ChannelStats()
        # Observers see every transmission (used by metrics / eavesdrop bookkeeping)
        self._tx_observers: list[Callable[["Radio", Message], None]] = []
        # Deterministic per-config constants, cached once so the hot
        # reception path does not recompute a log10 per attempt.
        self._noise_mw = dbm_to_mw(self.config.noise_floor_dbm)
        self._noise_only_dbm = mw_to_dbm(self._noise_mw)
        if self.config.fading_streams == "pairwise":
            from repro.net.fading import PairwiseFading

            self.pair_fading: Optional[PairwiseFading] = PairwiseFading(
                seed=sim.seed,
                shadowing_sigma_db=self.config.shadowing_sigma_db,
                rayleigh_fading=self.config.rayleigh_fading)
        elif self.config.fading_streams == "shared":
            self.pair_fading = None
        else:
            raise ValueError(
                f"unknown fading_streams {self.config.fading_streams!r}; "
                "expected 'shared' or 'pairwise'")

    # ------------------------------------------------------------------ setup

    def register(self, radio: "Radio") -> None:
        if radio.node_id in self._radios:
            raise ValueError(f"duplicate radio id {radio.node_id!r}")
        self._radios[radio.node_id] = radio

    def unregister(self, radio: "Radio") -> None:
        self._radios.pop(radio.node_id, None)

    def radios(self) -> list["Radio"]:
        return list(self._radios.values())

    def receivers_in_order(self) -> list["Radio"]:
        """Radios in registration order -- the reception-evaluation order.

        This order is a load-bearing contract, not an implementation
        detail: in ``fading_streams="shared"`` mode every per-attempt
        fading/success draw comes from the single simulator RNG, so the
        order receivers are evaluated in *is* the random stream.  Both
        kernels (and any future broadcast implementation) must evaluate
        receivers in exactly this order.  In "pairwise" mode only the
        delivery-event scheduling order still depends on it.
        """
        return list(self._radios.values())

    def add_interferer(self, interferer: Interferer) -> None:
        self._interferers.append(interferer)

    def remove_interferer(self, interferer: Interferer) -> None:
        if interferer in self._interferers:
            self._interferers.remove(interferer)

    def add_tx_observer(self, observer: Callable[["Radio", Message], None]) -> None:
        self._tx_observers.append(observer)

    # ------------------------------------------------------- propagation model

    def path_loss_db(self, distance: float) -> float:
        d = max(distance, self.config.min_distance_m)
        return (self.config.reference_loss_db
                + 10.0 * self.config.path_loss_exponent * math.log10(d))

    def _fading_db(self) -> float:
        """Random large+small scale fading term for one delivery attempt."""
        fading = 0.0
        if self.config.shadowing_sigma_db > 0:
            fading += self.sim.rng.gauss(0.0, self.config.shadowing_sigma_db)
        if self.config.rayleigh_fading:
            # Rayleigh amplitude => exponential power with unit mean.
            u = self.sim.rng.random()
            u = max(u, 1e-12)
            fading += 10.0 * math.log10(-math.log(u))
        return fading

    def received_power_dbm(self, tx_power_dbm: float, distance: float,
                           with_fading: bool = True) -> float:
        rx = tx_power_dbm - self.path_loss_db(distance)
        if with_fading:
            rx += self._fading_db()
        return rx

    def mean_received_power_dbm(self, tx_power_dbm: float, distance: float) -> float:
        """Deterministic (fading-free) received power; used for carrier sensing."""
        return tx_power_dbm - self.path_loss_db(distance)

    def interference_mw_at(self, position: float, exclude: Optional["Radio"] = None) -> float:
        """Total interference power (mW) at a position right now.

        Sums registered interferers (jammers) and currently active
        transmissions other than ``exclude``.
        """
        now = self.sim.now
        if not self._interferers:
            # Fast path for the common case: the only in-flight frame is
            # the excluded sender's own transmission (or nothing at all).
            active = self._active
            if not active:
                return 0.0
            if len(active) == 1 and active[0].sender is exclude:
                return 0.0
        total = 0.0
        for source in self._interferers:
            dbm = source.interference_dbm_at(position, now)
            if dbm > float("-inf"):
                total += dbm_to_mw(dbm)
        self._reap_active(now)
        for tx in self._active:
            if exclude is not None and tx.sender is exclude:
                continue
            distance = abs(tx.sender.position() - position)
            total += dbm_to_mw(self.mean_received_power_dbm(tx.power_dbm, distance))
        return total

    def channel_busy(self, radio: "Radio") -> bool:
        """Carrier-sense check used by the MAC: is in-band power above CS threshold?"""
        power_mw = self.interference_mw_at(radio.position(), exclude=radio)
        return mw_to_dbm(power_mw) >= self.config.carrier_sense_dbm

    def _reap_active(self, now: float) -> None:
        self._active = [tx for tx in self._active if tx.end > now]

    # ------------------------------------------------------------ transmission

    def airtime(self, msg: Message) -> float:
        return msg.size_bits() / self.config.bitrate_bps

    def broadcast(self, sender: "Radio", msg: Message,
                  duration: Optional[float] = None) -> None:
        """Transmit ``msg`` from ``sender`` to every other registered radio.

        Reception is evaluated independently per receiver, in
        :meth:`receivers_in_order` order (see its docstring for why the
        order matters).  Delivery (if successful) is scheduled at
        transmission end + propagation delay.  ``duration`` lets the MAC
        pass a precomputed airtime so the frame is not re-serialised.
        """
        cfg = self.config
        now = self.sim.now
        if duration is None:
            duration = self.airtime(msg)
        power = sender.tx_power_dbm if sender.tx_power_dbm is not None else cfg.tx_power_dbm

        self.stats.transmissions += 1
        obs.inc("frames.sent")
        self._reap_active(now)
        self._active.append(_ActiveTransmission(sender, power, now, now + duration))
        for observer in self._tx_observers:
            observer(sender, msg)

        if self.pair_fading is not None:
            self._broadcast_pairwise(sender, msg, duration, power)
            return

        sender_pos = sender.position()
        noise_mw = self._noise_mw
        for receiver in self.receivers_in_order():
            if receiver is sender:
                continue
            if not receiver.enabled:
                continue
            distance = abs(receiver.position() - sender_pos)
            if distance > cfg.max_range_m:
                self.stats.out_of_range += 1
                continue
            self.stats.delivery_attempts += 1
            rx_power_dbm = self.received_power_dbm(power, distance)
            interference_mw = self.interference_mw_at(receiver.position(), exclude=sender)
            if interference_mw == 0.0:
                sinr_db = rx_power_dbm - self._noise_only_dbm
            else:
                sinr_db = rx_power_dbm - mw_to_dbm(noise_mw + interference_mw)
            if self._reception_success(sinr_db):
                delay = duration + distance / cfg.propagation_speed
                self.sim.schedule(delay, receiver.deliver, msg)
                self.stats.delivered += 1
                obs.inc("frames.delivered")
            else:
                if interference_mw > noise_mw * 0.1:
                    self.stats.lost_interference += 1
                    obs.inc("frames.jammed")
                else:
                    self.stats.lost_noise += 1
                    obs.inc("frames.lost_noise")

    def _broadcast_pairwise(self, sender: "Radio", msg: Message,
                            duration: float, power: float) -> None:
        """Per-receiver reception loop drawing from per-pair streams.

        This is the scalar-kernel pairwise path.  Every float transform
        goes through the shared numpy helpers in :mod:`repro.net.fading`
        (called with length-1 arrays) so the vector kernel's batched
        implementation produces bit-identical results.
        """
        import numpy as np

        from repro.net.fading import path_loss_db_array, success_probability_array

        cfg = self.config
        assert self.pair_fading is not None
        sender_pos = sender.position()
        noise_mw = self._noise_mw
        for receiver in self.receivers_in_order():
            if receiver is sender or not receiver.enabled:
                continue
            receiver_pos = receiver.position()
            distance = abs(receiver_pos - sender_pos)
            if distance > cfg.max_range_m:
                self.stats.out_of_range += 1
                continue
            self.stats.delivery_attempts += 1
            fading_db, success_u = self.pair_fading.draw(sender.node_id,
                                                         receiver.node_id)
            loss = path_loss_db_array(np.array([distance]),
                                      cfg.reference_loss_db,
                                      cfg.path_loss_exponent,
                                      cfg.min_distance_m)
            rx_power_dbm = power - loss + fading_db   # length-1 array
            interference_mw = self.interference_mw_at(receiver_pos, exclude=sender)
            if interference_mw == 0.0:
                sinr_db = rx_power_dbm - self._noise_only_dbm
            else:
                sinr_db = rx_power_dbm - mw_to_dbm(noise_mw + interference_mw)
            p_success = success_probability_array(sinr_db,
                                                  cfg.sinr_threshold_db,
                                                  cfg.per_steepness)
            if success_u < float(p_success[0]):
                delay = duration + distance / cfg.propagation_speed
                self.sim.schedule(delay, receiver.deliver, msg)
                self.stats.delivered += 1
                obs.inc("frames.delivered")
            else:
                if interference_mw > noise_mw * 0.1:
                    self.stats.lost_interference += 1
                    obs.inc("frames.jammed")
                else:
                    self.stats.lost_noise += 1
                    obs.inc("frames.lost_noise")

    def _reception_success(self, sinr_db: float) -> bool:
        """Logistic packet-success probability around the SINR threshold."""
        cfg = self.config
        x = cfg.per_steepness * (sinr_db - cfg.sinr_threshold_db)
        # guard against overflow for extreme SINRs
        if x > 30:
            p_success = 1.0
        elif x < -30:
            p_success = 0.0
        else:
            p_success = 1.0 / (1.0 + math.exp(-x))
        return self.sim.rng.random() < p_success

    # --------------------------------------------------------------- utilities

    def expected_pdr(self, distance: float, interference_dbm: float = float("-inf"),
                     samples: int = 200) -> float:
        """Monte-Carlo estimate of delivery probability at a given distance.

        Useful for calibration tests; does not touch channel statistics.
        """
        cfg = self.config
        noise_mw = dbm_to_mw(cfg.noise_floor_dbm) + dbm_to_mw(interference_dbm) \
            if interference_dbm > float("-inf") else dbm_to_mw(cfg.noise_floor_dbm)
        success = 0
        for _ in range(samples):
            rx = self.received_power_dbm(cfg.tx_power_dbm, distance)
            sinr = rx - mw_to_dbm(noise_mw)
            if self._reception_success(sinr):
                success += 1
        return success / samples
