"""Simplified CSMA/CA medium access control.

The MAC gives the reproduction two behaviours that matter for the paper's
availability attacks:

* **Carrier-sense deferral** -- a barrage jammer that keeps in-band power
  above the carrier-sense threshold starves transmit opportunities, not
  just receptions.
* **Queueing with finite capacity** -- DoS floods saturate the transmit
  queue and delay or drop legitimate traffic.

The model is deliberately slotted-and-simplified (no RTS/CTS, no ACKs --
802.11p broadcast has neither): on send, if the channel is sensed busy the
frame backs off for a random number of slots and retries, up to a retry
budget, after which it is dropped and counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.messages import Message
from repro.net.simulator import Simulator
from repro.obs import registry as obs

if TYPE_CHECKING:
    from repro.net.channel import RadioChannel
    from repro.net.radio import Radio


@dataclass
class MacConfig:
    slot_time: float = 13e-6          # 802.11p slot
    max_backoff_slots: int = 15
    max_retries: int = 7
    queue_capacity: int = 64


@dataclass
class MacStats:
    enqueued: int = 0
    sent: int = 0
    dropped_queue_full: int = 0
    dropped_retry_limit: int = 0
    total_backoffs: int = 0

    @property
    def drop_ratio(self) -> float:
        if self.enqueued == 0:
            return 0.0
        return (self.dropped_queue_full + self.dropped_retry_limit) / self.enqueued


class CsmaMac:
    """Per-radio CSMA/CA transmit path."""

    def __init__(self, sim: Simulator, channel: "RadioChannel", radio: "Radio",
                 config: Optional[MacConfig] = None) -> None:
        self.sim = sim
        self.channel = channel
        self.radio = radio
        self.config = config or MacConfig()
        self.stats = MacStats()
        self._queue: list[Message] = []
        self._transmitting = False

    def enqueue(self, msg: Message) -> bool:
        """Queue a frame for transmission.  Returns False if dropped."""
        self.stats.enqueued += 1
        if len(self._queue) >= self.config.queue_capacity:
            self.stats.dropped_queue_full += 1
            obs.inc("mac.dropped_queue_full")
            return False
        self._queue.append(msg)
        if not self._transmitting:
            self._start_next()
        return True

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        msg = self._queue[0]
        self._attempt(msg, retries_left=self.config.max_retries)

    def _attempt(self, msg: Message, retries_left: int) -> None:
        if not self.radio.enabled:
            # Radio disabled mid-flight (e.g. malware kill): flush the queue.
            self._queue.clear()
            self._transmitting = False
            return
        if self.channel.channel_busy(self.radio):
            if retries_left <= 0:
                self.stats.dropped_retry_limit += 1
                obs.inc("mac.dropped_retry_limit")
                self._pop_and_continue()
                return
            self.stats.total_backoffs += 1
            slots = self.sim.rng.randint(1, self.config.max_backoff_slots)
            self.sim.schedule(slots * self.config.slot_time,
                              self._attempt, msg, retries_left - 1)
            return
        # Channel clear: transmit now.  Airtime is computed once and shared
        # with the channel -- message serialisation is not free.
        airtime = self.channel.airtime(msg)
        self.channel.broadcast(self.radio, msg, duration=airtime)
        self.stats.sent += 1
        self.sim.schedule(airtime, self._pop_and_continue)

    def _pop_and_continue(self) -> None:
        if self._queue:
            self._queue.pop(0)
        self._start_next()
