"""Counter-based per-pair fading streams and shared reception math.

The legacy channel draws shadowing/Rayleigh/success randomness from the
single simulator RNG *in receiver-registration order* inside
:meth:`RadioChannel.broadcast`.  That makes every draw depend on which
radios happen to be registered and in what order -- an accidental
invariant that blocks any vectorized (batched) reception evaluation.

This module provides the explicit alternative (``fading_streams:
"pairwise"`` in :class:`~repro.net.channel.ChannelConfig`): every ordered
``(sender, receiver)`` pair owns its own deterministic stream, keyed by
a hash of ``(channel seed, sender id, receiver id)`` and advanced by a
per-pair *attempt counter*.  Draws therefore depend only on the pair and
on how many delivery attempts that pair has seen -- never on who else is
registered.  The same stream yields the same episode whether attempts
are evaluated one receiver at a time (scalar kernel) or as a batch
(vector kernel).

Bit-exactness contract
----------------------
All transforms here are implemented with numpy ufuncs operating on
arrays.  The scalar kernel calls them with length-1 arrays and the
vector kernel with length-K batches; numpy ufuncs are elementwise
shape-consistent, so both paths produce bit-identical float64 results
(property-tested in ``tests/kernel/test_properties.py``).  Do not
rewrite any of these expressions with ``math.*`` calls: CPython's libm
and numpy's vectorized ufuncs differ in the last ulp for ``log``/
``log10``/``exp``.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Uniform draws consumed per delivery attempt (always all four, so the
#: stream layout does not depend on which fading terms are enabled):
#: two for Box-Muller shadowing, one for Rayleigh power, one for the
#: reception-success decision.
DRAWS_PER_ATTEMPT = 4

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_TO_UNIT = float(2.0 ** -53)
_TWO_PI = 2.0 * np.pi
# Per-lane word offsets; uint64 arithmetic is mod-2^64, so
# ``(ctr*4 + lane) * GOLDEN == ctr*4*GOLDEN + lane*GOLDEN`` exactly and
# all four lanes of an attempt can be generated in one fused pass.
with np.errstate(over="ignore"):
    _LANE_OFFSETS = np.arange(DRAWS_PER_ATTEMPT, dtype=np.uint64) * _GOLDEN
    _DRAW_STRIDE = np.uint64(DRAWS_PER_ATTEMPT) * _GOLDEN


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        z = x + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _uniforms(keys: np.ndarray, counters: np.ndarray, lane: int) -> np.ndarray:
    """One uniform in [0, 1) per pair for draw ``lane`` of each attempt."""
    with np.errstate(over="ignore"):
        word = keys + (counters * np.uint64(DRAWS_PER_ATTEMPT)
                       + np.uint64(lane)) * _GOLDEN
    bits = _splitmix64(word) >> np.uint64(11)
    return bits.astype(np.float64) * _TO_UNIT


def pair_stream_key(seed: int, sender_id: str, receiver_id: str) -> int:
    """Stable 64-bit stream key for one ordered (sender, receiver) pair."""
    blob = f"platoonsec-fading/1|{seed}|{sender_id}|{receiver_id}"
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def path_loss_db_array(distance: np.ndarray, reference_loss_db: float,
                       path_loss_exponent: float,
                       min_distance_m: float) -> np.ndarray:
    """Log-distance path loss over an array of distances (pairwise mode)."""
    d = np.maximum(distance, min_distance_m)
    return reference_loss_db + 10.0 * path_loss_exponent * np.log10(d)


def success_probability_array(sinr_db: np.ndarray, threshold_db: float,
                              steepness: float) -> np.ndarray:
    """Logistic packet-success probability over an array of SINRs.

    Mirrors :meth:`RadioChannel._reception_success` including the +/-30
    overflow guard (values beyond it saturate to exactly 1.0 / 0.0).
    """
    x = steepness * (sinr_db - threshold_db)
    p = 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
    return np.where(x > 30.0, 1.0, np.where(x < -30.0, 0.0, p))


class PairwiseFading:
    """Deterministic per-(sender, receiver) fading and success streams.

    Parameters mirror the channel config; ``seed`` is the simulator seed
    so identically-seeded episodes replay identical streams.
    """

    def __init__(self, seed: int, shadowing_sigma_db: float,
                 rayleigh_fading: bool) -> None:
        self.seed = seed
        self.shadowing_sigma_db = shadowing_sigma_db
        self.rayleigh_fading = rayleigh_fading
        self._keys: dict[tuple[str, str], int] = {}
        self._counters: dict[tuple[str, str], int] = {}
        # Receiver batches are near-stable per sender, so each sender's
        # live batch keeps its uint64 key/counter arrays whole; counters
        # are flushed back to the per-pair dict when the batch changes.
        self._live: dict[str, tuple[tuple, np.ndarray, np.ndarray]] = {}

    def _flush(self, sender_id: str) -> None:
        live = self._live.pop(sender_id, None)
        if live is None:
            return
        batch, _, counters = live
        for receiver_id, counter in zip(batch, counters):
            self._counters[(sender_id, receiver_id)] = int(counter)

    def attempt_count(self, sender_id: str, receiver_id: str) -> int:
        """Delivery attempts drawn so far for one ordered pair."""
        live = self._live.get(sender_id)
        if live is not None and receiver_id in live[0]:
            return int(live[2][live[0].index(receiver_id)])
        return self._counters.get((sender_id, receiver_id), 0)

    def draw_batch(self, sender_id: str, receiver_ids: list[str]
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Fading [dB] and success-uniform for one attempt per receiver.

        Advances each pair's attempt counter by one.  The result for a
        given pair depends only on ``(seed, sender, receiver, attempt)``
        -- not on the batch it was drawn in, nor on radio registration
        order (tested in ``tests/kernel/test_rng_streams.py``).
        """
        batch = tuple(receiver_ids)
        live = self._live.get(sender_id)
        if live is None or live[0] != batch:
            self._flush(sender_id)
            keys = np.empty(len(batch), dtype=np.uint64)
            counters = np.empty(len(batch), dtype=np.uint64)
            for i, receiver_id in enumerate(batch):
                pair = (sender_id, receiver_id)
                key = self._keys.get(pair)
                if key is None:
                    key = pair_stream_key(self.seed, sender_id, receiver_id)
                    self._keys[pair] = key
                keys[i] = key
                counters[i] = self._counters.get(pair, 0)
            live = (batch, keys, counters)
            self._live[sender_id] = live
        _, keys, counters = live

        # All four lanes in one fused (4, k) pass; identical words (and
        # hence uniforms) to four separate ``_uniforms`` calls because
        # uint64 multiplication distributes mod 2^64.
        with np.errstate(over="ignore"):
            base = keys + counters * _DRAW_STRIDE
            counters += np.uint64(1)
            word = base[None, :] + _LANE_OFFSETS[:, None]
            z = word + _GOLDEN
            z = (z ^ (z >> np.uint64(30))) * _MIX1
            z = (z ^ (z >> np.uint64(27))) * _MIX2
            bits = (z ^ (z >> np.uint64(31))) >> np.uint64(11)
        u = bits.astype(np.float64) * _TO_UNIT

        fading = np.zeros(len(batch), dtype=np.float64)
        if self.shadowing_sigma_db > 0:
            u1 = np.maximum(u[0], _TO_UNIT)
            # Box-Muller; sqrt/cos/log are all numpy ufuncs (see module
            # docstring for why that matters).
            fading = fading + (self.shadowing_sigma_db
                               * np.sqrt(-2.0 * np.log(u1))
                               * np.cos(_TWO_PI * u[1]))
        if self.rayleigh_fading:
            u3 = np.maximum(u[2], 1e-12)
            fading = fading + 10.0 * np.log10(-np.log(u3))
        return fading, u[3]

    def draw(self, sender_id: str, receiver_id: str) -> tuple[float, float]:
        """Single-pair attempt draw (scalar kernel path).

        Implemented as a length-1 :meth:`draw_batch` so the scalar and
        vector kernels share every arithmetic instruction.
        """
        fading, success_u = self.draw_batch(sender_id, [receiver_id])
        return float(fading[0]), float(success_u[0])
