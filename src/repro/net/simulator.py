"""Deterministic discrete-event simulation engine.

The engine is intentionally small: an event heap, a clock, and a seeded
random source.  Everything in the reproduction (vehicle dynamics ticks,
beacon transmissions, channel deliveries, attack processes) is scheduled
through one :class:`Simulator` instance so that a single seed reproduces an
entire experiment bit-for-bit.

Design notes
------------
* Events at the same timestamp are ordered by insertion sequence number, so
  scheduling order breaks ties deterministically.
* Cancellation is O(1): events carry a ``cancelled`` flag and are skipped
  when popped (lazy deletion).
* Periodic processes are self-rescheduling events created by
  :meth:`Simulator.every`.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs import registry as obs


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


@dataclass(eq=False, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which gives a deterministic total
    order.  The callback and its arguments do not participate in ordering.
    ``__lt__`` is hand-written (the heap's hottest comparison) instead of
    dataclass-generated: same order, no tuple construction per call.
    """

    time: float
    seq: int
    callback: Callable[..., Any]
    args: tuple = ()
    cancelled: bool = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call multiple times."""
        self.cancelled = True


class PeriodicProcess:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim: "Simulator", interval: float, callback: Callable[[], Any],
                 jitter: float = 0.0) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._stopped = False
        self._event: Optional[Event] = None

    @property
    def interval(self) -> float:
        return self._interval

    @interval.setter
    def interval(self, value: float) -> None:
        if value <= 0:
            raise SimulationError(f"periodic interval must be positive, got {value}")
        self._interval = value

    def start(self, initial_delay: Optional[float] = None) -> "PeriodicProcess":
        delay = self._interval if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._fire)
        return self

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if self._stopped:  # callback may have stopped us
            return
        delay = self._interval
        if self._jitter > 0:
            delay += self._sim.rng.uniform(-self._jitter, self._jitter)
            delay = max(delay, 1e-9)
        self._event = self._sim.schedule(delay, self._fire)


class Simulator:
    """Discrete-event simulator with a deterministic clock and RNG.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All stochastic
        components (channel fading, MAC backoff, attack timing) must draw
        from :attr:`rng` so experiments are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.rng = random.Random(seed)
        self.seed = seed
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} before now={self._now:.6f}")
        event = Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return event

    def every(self, interval: float, callback: Callable[[], Any],
              initial_delay: Optional[float] = None, jitter: float = 0.0) -> PeriodicProcess:
        """Create and start a periodic process firing every ``interval`` seconds."""
        return PeriodicProcess(self, interval, callback, jitter=jitter).start(initial_delay)

    def run_until(self, t_end: float) -> None:
        """Process events until the clock reaches ``t_end`` (inclusive).

        The loop is the simulation's hottest path, so observability is
        tiered: the event counter and the loop-level ``sim.run`` timer
        are always on (one increment per call), while per-callback
        timing -- one clock read per event, attributed to the callback's
        qualified name -- only runs under ``obs.set_profiling(True)``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed_before = self._events_processed
        wall_start = time.perf_counter()
        profiling = obs.profiling_enabled()
        try:
            while self._queue and self._queue[0].time <= t_end:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_processed += 1
                if profiling:
                    t0 = time.perf_counter()
                    event.callback(*event.args)
                    name = getattr(event.callback, "__qualname__",
                                   type(event.callback).__name__)
                    obs.observe(f"sim.cb.{name}", time.perf_counter() - t0)
                else:
                    event.callback(*event.args)
            self._now = max(self._now, t_end)
        finally:
            self._running = False
            obs.inc("sim.events", self._events_processed - processed_before)
            obs.observe("sim.run", time.perf_counter() - wall_start)

    def run(self, duration: float) -> None:
        """Process events for ``duration`` seconds of simulated time."""
        self.run_until(self._now + duration)

    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events; useful in tests."""
        return sum(1 for e in self._queue if not e.cancelled)
