"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack <threat> [options]``
    Run one canonical Table II attack experiment (baseline vs attacked)
    and print the outcome.
``catalogue``
    Run the full Table II campaign.
``highway``
    Run the multi-platoon highway campaign: every catalogued
    cross-platoon cell (Sybil ghost shopping, merge-point jamming, ...)
    baseline vs attacked, with per-cell impact ratios.
``matrix [mechanism]``
    Run the Table III defence matrix (optionally one mechanism row).

The campaign commands (``catalogue``, ``matrix``) execute through the
campaign engine: ``--workers N`` fans episodes over a process pool,
``--store URL`` persists/reuses episode results across invocations and
processes (``json:<dir>`` for the one-file-per-hash layout,
``sqlite:<path>`` for the concurrent-runner-safe database; the old
``--cache-dir`` alias is gone and now errors with the replacement
spelled out), ``--trace-dir DIR`` streams one schema-versioned JSONL
trace per computed unit (named by content hash), ``--profile`` enables
profiling spans and prints the aggregated counters/timers, and
``--report`` prints the per-unit cache/timing breakdown.
``experiment <specfile.json|threat[/variant]>``
    Run one declarative ``platoonsec-experiment/1`` spec (baseline vs
    attacked, plus a defended episode when the spec declares defences).
    Accepts a spec JSON file or a catalogue reference like
    ``jamming`` / ``malware/obd``.
``experiments [--list|--validate] [spec ...]``
    List the registry-backed experiment catalogue and defence stacks, or
    validate the catalogue / the given spec files without running them.
``sweep <specfile.json|preset>``
    Expand a declarative parameter sweep (grid/seeded-random axes over
    scenario, channel, vehicle or attack/defence parameters, with
    ``seed_replicates`` per point) through the campaign engine, print
    the dose-response table and threshold estimates, and -- with
    ``--out-dir`` -- write the byte-deterministic ``platoonsec-sweep/1``
    JSON + CSV artifacts.  ``sweep --list-presets`` names the shipped
    presets.
``tracediff <a> <b>``
    Compare two trace files and name the first divergent record.
``detections <trace|run-log>``
    Summarize the security-verdict telemetry in a JSONL episode trace
    (per-mechanism verdict counts rebuilt from ``verdict`` records) or
    a campaign run log (the detection-quality projection on every
    ``unit_finished`` event): flag rate, TPR/FPR against ground-truth
    attack provenance, time to first flag and missed injections.
``bench-compare [old.json [new.json]]``
    Diff two ``platoonsec-bench/1`` records (or the last N history
    entries) under explicit wall-time/metric tolerances; exits non-zero
    on drift, with distinct codes for divergence and usage errors.
``report (catalogue|matrix|sweep) [target]``
    Run a campaign or sweep and render a single self-contained HTML
    report (outcome grids, inline-SVG dose-response curves, per-unit
    timing, cache summary) -- no scripts, no network assets.
``store (stats|gc|migrate|verify) ...``
    Maintain persistent result stores: entry/lease statistics,
    ``gc --older-than 7d`` garbage collection, byte-identical
    ``migrate <src> <dst>`` between backends, and ``verify``
    re-checking every entry against its content key.
``taxonomy``
    Print Tables I/II/III from the machine-readable taxonomy and verify
    the implementation registry.
``risk``
    Print the platoon TARA risk report.

Run telemetry
-------------
The campaign commands accept ``--run-log PATH`` (stream one JSON event
line per run/unit/phase transition; with a store configured it defaults
to ``run-log.jsonl`` inside a ``json:`` store's directory, or next to a
``sqlite:`` store's database) and
``--progress`` (force the live stderr progress line, which otherwise
auto-enables only on a TTY).  ``--bench-history PATH`` appends one
``platoonsec-bench/1`` record per campaign to a JSONL history file that
``bench-compare`` gates regressions against.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.analysis.tables import format_table
from repro.core import taxonomy
from repro.core.campaign import (
    run_defense_matrix,
    run_threat_catalogue,
    run_threat_experiment,
    threat_experiment,
)
from repro.core.runner import CampaignRunner
from repro.core.scenario import ScenarioConfig


def _base_config(args) -> ScenarioConfig:
    from repro.net.channel import ChannelConfig

    return ScenarioConfig(n_vehicles=args.vehicles, duration=args.duration,
                          warmup=10.0, seed=args.seed, trucks=args.trucks,
                          kernel=args.kernel,
                          channel=ChannelConfig(fading_streams=args.fading))


def _resolve_store(args):
    """The result store selected by ``--store``.

    ``--cache-dir`` served its one deprecation release as an alias for
    ``--store json:DIR`` and is now removed; the argument survives only
    so the error can name the exact replacement invocation.
    """
    from repro.store import open_store

    if args.cache_dir is not None:
        raise ValueError(
            "--cache-dir was removed; use --store "
            f"json:{args.cache_dir} (or --store sqlite:<path> for the "
            "concurrent-runner-safe backend)")
    if args.store is not None:
        return open_store(args.store)
    return None


def _make_telemetry(args, store=None):
    """Build the run-event bus from the global telemetry flags.

    Returns ``None`` when nothing would listen (no ``--run-log``, no
    store to default it next to, progress neither forced nor on a TTY),
    so the default CLI path stays telemetry-free.  The default run-log
    placement is store-aware: inside the directory for ``json:`` stores,
    a sibling ``run-log.jsonl`` next to the database for ``sqlite:``.
    """
    from repro.obs.telemetry import (
        JsonlRunLogSink,
        ProgressSink,
        TelemetryBus,
    )

    run_log = getattr(args, "run_log", None)
    if run_log is None and store is not None:
        run_log = store.default_run_log_path()
    sinks = []
    if run_log is not None:
        sinks.append(JsonlRunLogSink(run_log))
    progress = ProgressSink(enabled=True if args.progress else None)
    if progress.enabled:
        sinks.append(progress)
    return TelemetryBus(sinks) if sinks else None


def _make_runner(args) -> CampaignRunner:
    store = _resolve_store(args)
    return CampaignRunner(workers=args.workers, store=store,
                          trace_dir=args.trace_dir,
                          telemetry=_make_telemetry(args, store))


def _print_report(runner: CampaignRunner, args) -> None:
    if runner.telemetry is not None:
        runner.telemetry.close()
    report = runner.report()
    if args.report:
        print(report.format())
    if args.profile:
        print(report.format_observability())
    print(report.summary())


def _append_bench_history(args, label: str, runner: CampaignRunner,
                          metrics) -> None:
    """Append one ``platoonsec-bench/1`` record when ``--bench-history``
    was given; silently a no-op otherwise."""
    if getattr(args, "bench_history", None) is None:
        return
    from repro.obs.history import append_history, make_bench_record

    record = make_bench_record(label, runner.report(), metrics=metrics,
                               root_seed=args.seed)
    append_history(args.bench_history, record)
    print(f"bench history: appended {label!r} to {args.bench_history}",
          file=sys.stderr)


def _catalogue_metrics(outcomes) -> dict:
    """Flat headline metrics for a Table II campaign."""
    metrics = {}
    for o in outcomes:
        metrics[f"{o.threat_key}/{o.variant}.baseline"] = o.baseline_value
        metrics[f"{o.threat_key}/{o.variant}.attacked"] = o.attacked_value
    metrics["effects_confirmed"] = float(
        sum(1 for o in outcomes if o.effect_present))
    return metrics


def _matrix_metrics(cells) -> dict:
    """Flat headline metrics for a Table III defence matrix."""
    metrics = {}
    for c in cells:
        prefix = f"{c.mechanism_key}/{c.threat_key}"
        metrics[f"{prefix}.defended"] = c.defended_value
        if c.mitigation is not None:
            metrics[f"{prefix}.mitigation"] = c.mitigation
        # Detection counters from the defended episode's verdict ledger:
        # deterministic simulator state, so CI gates them at zero
        # tolerance alongside the headline metric.
        totals = (c.detection or {}).get("totals")
        if totals:
            metrics[f"{prefix}.det_verdicts"] = float(totals["verdicts"])
            metrics[f"{prefix}.det_flagged"] = float(totals["flagged"])
            metrics[f"{prefix}.det_missed"] = float(
                totals["missed_injections"])
    return metrics


def _sweep_metrics(result) -> dict:
    """Flat headline metrics for a sweep (per-point attacked mean and
    effect rate)."""
    metrics = {}
    for point in result.points:
        metrics[f"{point.label}.attacked_mean"] = point.attacked["mean"]
        metrics[f"{point.label}.effect_rate"] = point.effect_rate
    return metrics


def _parse_only(only) -> list | None:
    """Validate a ``--only`` comma-list against the threat taxonomy."""
    if only is None:
        return None
    threats = [key for key in only.split(",") if key]
    unknown = [key for key in threats if key not in taxonomy.THREATS]
    if unknown:
        raise ValueError(f"unknown threats {unknown}; expected from "
                         f"{sorted(taxonomy.THREATS)}")
    if not threats:
        raise ValueError("empty campaign -- no threats selected")
    return threats


def _print_listing(headers, rows, title) -> int:
    """The one table-formatting path shared by every catalogue-style
    listing (``experiments --list``, ``sweep --list-presets``)."""
    print(format_table(headers, rows, title=title))
    return 0


def cmd_attack(args) -> int:
    experiment = threat_experiment(args.threat, _base_config(args),
                                   variant=args.variant)
    outcome = run_threat_experiment(experiment)
    print(format_table(
        ["threat", "variant", "metric", "baseline", "attacked", "effect"],
        [[outcome.threat_key, outcome.variant, outcome.metric_name,
          round(outcome.baseline_value, 3), round(outcome.attacked_value, 3),
          "CONFIRMED" if outcome.effect_present else "no effect"]]))
    for key, value in sorted(outcome.attack_observables.items()):
        print(f"  {key} = {value}")
    if args.profile:
        print(obs.format_snapshot(obs.get_registry().snapshot(),
                                  title="episode observability"))
    return 0 if outcome.effect_present else 1


def _pm(value: float, std: float, replicates: int, digits: int = 3) -> str:
    """``mean±std`` when replicated, plain value otherwise."""
    if replicates > 1:
        return f"{round(value, digits)}±{round(std, digits)}"
    return str(round(value, digits))


def _catalogue_label(only) -> str:
    return f"catalogue[{only}]" if only else "catalogue"


def cmd_catalogue(args) -> int:
    threats = _parse_only(args.only)
    runner = _make_runner(args)
    outcomes = run_threat_catalogue(_base_config(args), threats=threats,
                                    seed_replicates=args.seed_replicates or 1,
                                    runner=runner)
    rows = [[o.threat_key, o.variant, o.metric_name,
             _pm(o.baseline_value, o.baseline_std, o.replicates),
             _pm(o.attacked_value, o.attacked_std, o.replicates),
             "CONFIRMED" if o.effect_present else "no effect"]
            for o in outcomes]
    print(format_table(["threat", "variant", "metric", "baseline",
                        "attacked", "effect"], rows,
                       title="Table II campaign"))
    _print_report(runner, args)
    _append_bench_history(args, _catalogue_label(args.only), runner,
                          _catalogue_metrics(outcomes))
    return 0 if all(o.effect_present for o in outcomes) else 1


def cmd_highway(args) -> int:
    from repro.core.campaign import run_highway_catalogue

    runner = _make_runner(args)
    outcomes = run_highway_catalogue(_base_config(args),
                                     seed_replicates=args.seed_replicates or 1,
                                     runner=runner)
    rows = [[o.threat_key, o.variant, o.metric_name,
             _pm(o.baseline_value, o.baseline_std, o.replicates),
             _pm(o.attacked_value, o.attacked_std, o.replicates),
             (round(o.impact_ratio, 4) if o.impact_ratio is not None
              else "n/a"),
             "CONFIRMED" if o.effect_present else "no effect"]
            for o in outcomes]
    print(format_table(["threat", "variant", "metric", "baseline",
                        "attacked", "impact ratio", "effect"], rows,
                       title="highway campaign (cross-platoon cells)"))
    if args.observables:
        for outcome in outcomes:
            print(f"{outcome.threat_key}/{outcome.variant}:")
            for key, value in sorted(outcome.attack_observables.items()):
                print(f"  {key} = {value}")
    _print_report(runner, args)
    _append_bench_history(args, "highway", runner,
                          _catalogue_metrics(outcomes))
    # The highway cells measure shared-spectrum impact: every cell must
    # move its headline metric (nonzero, non-degenerate impact ratio).
    ok = all(o.impact_ratio is not None and abs(o.impact_ratio) > 0.0
             for o in outcomes)
    return 0 if ok else 1


def cmd_matrix(args) -> int:
    runner = _make_runner(args)
    mechanisms = [args.mechanism] if args.mechanism else None
    cells = run_defense_matrix(_base_config(args), mechanisms=mechanisms,
                               seed_replicates=args.seed_replicates or 1,
                               runner=runner)
    rows = [[c.mechanism_key, c.threat_key, c.metric_name,
             _pm(c.baseline_value, c.baseline_std, c.replicates),
             _pm(c.attacked_value, c.attacked_std, c.replicates),
             _pm(c.defended_value, c.defended_std, c.replicates),
             round(c.mitigation, 2) if c.mitigation is not None else "n/a"]
            for c in cells]
    print(format_table(["mechanism", "threat", "metric", "baseline",
                        "attacked", "defended", "mitigation"], rows,
                       title="Table III defence matrix"))
    _print_report(runner, args)
    _append_bench_history(
        args, f"matrix[{args.mechanism}]" if args.mechanism else "matrix",
        runner, _matrix_metrics(cells))
    return 0


def cmd_experiment(args) -> int:
    from repro.core.campaign import run_experiment_spec

    spec = _resolve_experiment_spec(args.spec)
    if spec is None:
        return 2
    run = run_experiment_spec(spec, _base_config(args))
    outcome = run.outcome
    headers = ["experiment", "metric", "baseline", "attacked"]
    row = [spec.display_name, outcome.metric_name,
           round(outcome.baseline_value, 3), round(outcome.attacked_value, 3)]
    if run.defended_value is not None:
        headers += ["defended", "mitigation"]
        row += [round(run.defended_value, 3),
                (round(run.mitigation, 2) if run.mitigation is not None
                 else "n/a")]
    headers.append("effect")
    row.append("CONFIRMED" if outcome.effect_present else "no effect")
    print(format_table(headers, [row],
                       title=f"experiment {spec.display_name} "
                             f"({spec.threat}/{spec.variant})"))
    for key, value in sorted(outcome.attack_observables.items()):
        print(f"  {key} = {value}")
    if args.profile:
        print(obs.format_snapshot(obs.get_registry().snapshot(),
                                  title="episode observability"))
    return 0 if outcome.effect_present else 1


def _resolve_experiment_spec(raw: str):
    """A spec file path or ``<threat>[/variant]`` catalogue reference;
    ``None`` (after printing the error) when neither resolves."""
    from pathlib import Path

    from repro.core.experiment import load_experiment_spec
    from repro.experiments import experiment_spec

    if Path(raw).exists():
        return load_experiment_spec(raw)
    threat, _, variant = raw.partition("/")
    if threat not in taxonomy.THREATS:
        print(f"error: {raw!r} is neither an experiment spec file "
              "nor a '<threat>[/variant]' catalogue reference "
              f"(threats: {sorted(taxonomy.THREATS)})", file=sys.stderr)
        return None
    return experiment_spec(threat, variant or None)


def cmd_falsify(args) -> int:
    from repro.falsify import Falsifier, SearchBudget, write_counterexample

    spec = _resolve_experiment_spec(args.spec)
    if spec is None:
        return 2
    runner = _make_runner(args)
    budget = SearchBudget(episodes=args.episodes,
                          samples_per_round=args.samples_per_round,
                          rounds=args.rounds,
                          descent_passes=args.descent_passes,
                          tighten_grid=args.tighten_grid)
    space_kwargs = {"max_windows": args.max_windows}
    if args.attack_seconds is not None:
        space_kwargs["attack_seconds"] = args.attack_seconds
    if args.tune:
        space_kwargs["tune"] = [name for name in args.tune.split(",") if name]
    falsifier = Falsifier(runner, root_seed=args.seed,
                          log=lambda message: print(f"falsify: {message}",
                                                    file=sys.stderr))
    result = falsifier.falsify(spec, _base_config(args), budget,
                               **space_kwargs)

    rows = [[entry["stage"], entry["schedule"],
             round(entry["severity"], 2), entry["collisions"],
             "VIOLATION" if entry["violated"] else ""]
            for entry in result.history]
    print(format_table(
        ["stage", "schedule", "severity [m]", "collisions", "verdict"],
        rows, title=f"falsification search: {result.spec_name} "
                    f"({result.episodes_used}/{budget.episodes} episodes)"))
    if result.baseline is not None and result.baseline.violated:
        print("baseline episode already violates safety; nothing to "
              "falsify", file=sys.stderr)
        return 2
    if not result.found:
        print("no safety violation found within the episode budget")
        _print_report(runner, args)
        return 1

    outcome = result.counterexample
    print(f"violation found: {outcome.verdict.describe()} "
          f"[{outcome.schedule.label()}]")
    if result.threshold_intensity is not None:
        print(f"violation threshold: ~{result.threshold_intensity:.2f} of "
              "the found schedule's intensity")
    if not args.no_emit:
        entry = write_counterexample(
            args.corpus_dir, result.counterexample_spec(),
            _base_config(args), provenance=result.provenance(),
            name=args.name)
        print(f"counterexample written: {entry.path}/")
        print(f"  replay: platoonsec experiment {entry.spec_path}")
    _print_report(runner, args)
    return 0


def cmd_experiments(args) -> int:
    from repro.core.experiment import load_experiment_spec
    from repro.experiments import (
        check_catalogue_complete,
        iter_defense_stacks,
        iter_experiment_specs,
    )

    if args.validate:
        if args.specs:
            failures = []
            for path in args.specs:
                try:
                    spec = load_experiment_spec(path)
                except (OSError, ValueError) as exc:
                    failures.append((path, str(exc)))
                    continue
                print(f"{path}: ok ({spec.display_name})")
            for path, reason in failures:
                print(f"{path}: INVALID -- {reason}", file=sys.stderr)
            return 2 if failures else 0
        problems = check_catalogue_complete()
        if problems:
            print("CATALOGUE PROBLEMS:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print("catalogue check: every threat, variant and mechanism "
              "resolves through the registry.")
        return 0
    experiment_rows = [
        [threat, variant, "*" if is_default else "",
         ", ".join(c.key for c in spec.attacks), spec.metric.name]
        for threat, variant, is_default, spec in iter_experiment_specs()]
    _print_listing(["threat", "variant", "default", "attacks", "metric"],
                   experiment_rows, "experiment catalogue (Table II)")
    stack_rows = [
        [mechanism, ", ".join(c.key for c in stack.defenses),
         ", ".join(f"{k}={v}" for k, v in sorted(stack.requirements.items()))
         or "-"]
        for mechanism, stack in iter_defense_stacks()]
    return _print_listing(["mechanism", "defenses", "requirements"],
                          stack_rows, "\ndefence stacks (Table III)")


def _resolve_sweep_spec(spec_arg: str, args):
    """A preset name or spec-file path -> a resolved ``SweepSpec``.

    Raises ``ValueError`` (a usage error, exit 2) when the argument is
    neither.
    """
    from pathlib import Path

    from repro.sweep import PRESETS, load_sweep_spec

    if spec_arg in PRESETS:
        spec = PRESETS[spec_arg]
    elif Path(spec_arg).exists():
        spec = load_sweep_spec(spec_arg)
    else:
        raise ValueError(f"{spec_arg!r} is neither a shipped preset "
                         f"({sorted(PRESETS)}) nor a spec file")
    return spec.resolved(
        root_seed=args.seed,
        seed_replicates=args.seed_replicates,
        base_defaults={"n_vehicles": args.vehicles,
                       "duration": args.duration,
                       "warmup": 10.0, "trucks": args.trucks})


def cmd_sweep(args) -> int:
    from repro.sweep import PRESETS, SweepEngine
    from repro.sweep.artifacts import write_sweep_artifacts

    if args.list_presets:
        return _print_listing(
            ["preset", "threat", "axes", "replicates"],
            [[spec.name, spec.threat,
              ", ".join(axis.path for axis in spec.axes),
              spec.seed_replicates]
             for spec in PRESETS.values()],
            "shipped sweep presets")
    if args.spec is None:
        print("error: sweep needs a spec file or preset name "
              "(see 'sweep --list-presets')", file=sys.stderr)
        return 2
    spec = _resolve_sweep_spec(args.spec, args)
    engine = SweepEngine(runner=_make_runner(args))
    result = engine.run(spec)
    rows = []
    for point in result.points:
        rows.append([
            point.label,
            _pm(point.baseline["mean"], point.baseline["std"],
                point.replicates),
            _pm(point.attacked["mean"], point.attacked["std"],
                point.replicates),
            (round(point.impact_ratio["mean"], 2)
             if point.impact_ratio else "n/a"),
            round(point.effect_rate, 2),
            round(point.disband_rate, 2),
            round(point.detection_rate, 2),
        ])
    print(format_table(
        ["point", f"baseline {result.points[0].metric}" if result.points
         else "baseline", "attacked", "impact ratio", "effect rate",
         "disband rate", "detection rate"], rows,
        title=f"sweep {spec.name} ({spec.seed_replicates} replicate(s) "
              f"per point, root seed {spec.root_seed})"))
    for estimate in result.thresholds:
        where = ("never reached" if estimate.crossing is None
                 else f"first crossed at {estimate.crossing:g}")
        print(f"threshold {estimate.response} >= {estimate.level:g}: {where}")
    if args.out_dir is not None:
        paths = write_sweep_artifacts(result, args.out_dir)
        print(f"artifacts: {paths['json']} {paths['csv']}")
    _print_report(engine.runner, args)
    _append_bench_history(args, f"sweep[{spec.name}]", engine.runner,
                          _sweep_metrics(result))
    return 0


def cmd_taxonomy(args) -> int:
    print(format_table(
        ["key", "survey", "year"],
        [[s.key, s.authors, s.year] for s in taxonomy.SURVEYS.values()],
        title="Table I -- related surveys"))
    print(format_table(
        ["key", "threat", "compromises", "implementations"],
        [[t.key, t.display_name,
          "/".join(a.value for a in t.compromises),
          ", ".join(t.attack_impls)] for t in taxonomy.THREATS.values()],
        title="\nTable II -- threats"))
    print(format_table(
        ["key", "mechanism", "targets", "implementations"],
        [[m.key, m.display_name, ", ".join(m.attack_targets),
          ", ".join(m.defense_impls)] for m in taxonomy.MECHANISMS.values()],
        title="\nTable III -- mechanisms"))
    problems = taxonomy.check_taxonomy_complete()
    if problems:
        print("\nREGISTRY PROBLEMS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nregistry check: every catalogued row is implemented.")
    return 0


def cmd_risk(args) -> int:
    from repro.risk import build_platoon_tara, format_risk_report

    print(format_risk_report(build_platoon_tara()))
    return 0


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _parse_age(text: str) -> float:
    """``"7d"``/``"36h"``/``"90m"``/``"45s"``/plain seconds -> seconds."""
    text = text.strip()
    unit = 1.0
    if text and text[-1].lower() in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1].lower()]
        text = text[:-1]
    try:
        seconds = float(text) * unit
    except ValueError:
        raise ValueError(f"bad age {text!r}; expected a number with an "
                         "optional s/m/h/d suffix (e.g. 7d, 36h)") from None
    if seconds < 0:
        raise ValueError("age must be >= 0")
    return seconds


def cmd_store_stats(args) -> int:
    from repro.store import open_store

    store = open_store(args.url, create=False)
    stats = store.stats()
    print(format_table(["property", "value"], stats.rows(),
                       title=f"result store {store.url()}"))
    if stats.lease_table:
        print(format_table(["key", "owner", "state", "remaining"],
                           stats.lease_rows(),
                           title="\nin-flight leases"))
    return 0


def cmd_store_gc(args) -> int:
    from repro.store import open_store

    older_than = _parse_age(args.older_than) \
        if args.older_than is not None else None
    store = open_store(args.url, create=False)
    before = len(store.keys())
    deleted = store.gc(older_than=older_than)
    print(f"store gc: deleted {len(deleted)} of {before} entries, "
          "purged expired leases"
          + (f" (older than {args.older_than})"
             if args.older_than is not None else ""))
    return 0


def cmd_store_migrate(args) -> int:
    from repro.store import migrate, open_store

    src = open_store(args.src, create=False)
    dst = open_store(args.dst)
    migrated, problems = migrate(src, dst)
    print(f"store migrate: {migrated} record(s) {src.url()} -> "
          f"{dst.url()} (byte-identical round-trip verified)")
    for key, reason in problems:
        print(f"  PROBLEM {key}: {reason}", file=sys.stderr)
    return 1 if problems else 0


def cmd_store_verify(args) -> int:
    from repro.store import open_store

    store = open_store(args.url, create=False)
    report = store.verify()
    if report.ok:
        print(f"store verify: {report.checked} entr(ies) ok in "
              f"{store.url()}")
        return 0
    print(f"store verify: {len(report.problems)} problem(s) in "
          f"{report.checked} entr(ies):", file=sys.stderr)
    for key, reason in report.problems:
        print(f"  {key}: {reason}", file=sys.stderr)
    return 1


def _opt(value, digits: int = 4):
    """Optional-metric cell: ``n/a`` for None, rounded otherwise."""
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return round(value, digits)
    return value


_DETECTION_HEADERS = ["mechanism", "verdicts", "flagged", "flag rate",
                      "TPR", "FPR", "first flag [s]", "missed"]


def _detection_rows(summary: dict) -> list:
    rows = []
    for name, tally in summary["mechanisms"].items():
        rows.append([name, tally["verdicts"], tally["flagged"],
                     _opt(tally["flag_rate"]), _opt(tally["tpr"]),
                     _opt(tally["fpr"]), _opt(tally["time_to_first_flag"]),
                     tally["missed_injections"]])
    totals = summary["totals"]
    rows.append(["(total)", totals["verdicts"], totals["flagged"],
                 _opt(totals["flag_rate"]), _opt(totals["tpr"]),
                 _opt(totals["fpr"]), _opt(totals["time_to_first_flag"]),
                 totals["missed_injections"]])
    return rows


def cmd_detections(args) -> int:
    """Summarize security verdicts from a trace or a campaign run log.

    The input kind is sniffed from the first JSON line: a trace leads
    with a ``format`` header, a run log with ``kind`` events.
    """
    import json

    from repro.obs.security import TRACE_VERDICT_CAP, summarize_trace_verdicts
    from repro.obs.trace import TRACE_FORMAT, load_trace

    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            first_line = fh.readline().strip()
            rest = fh.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        head = json.loads(first_line) if first_line else {}
    except json.JSONDecodeError:
        head = {}

    if isinstance(head, dict) and head.get("format") == TRACE_FORMAT:
        header, records = load_trace(args.path)
        summary = summarize_trace_verdicts(records).summary()
        unit = header.get("spec_key") or args.path
        print(format_table(_DETECTION_HEADERS, _detection_rows(summary),
                           title=f"detection verdicts: trace {unit}"))
        print(f"(trace retention keeps the first {TRACE_VERDICT_CAP} "
              "records per mechanism/verdict pair; aggregate counts in "
              "run logs and metrics are uncapped)")
        return 0

    if isinstance(head, dict) and "kind" in head:
        rows = []
        for line in [first_line] + rest.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            detection = event.get("detection")
            if event.get("kind") != "unit_finished" or not detection:
                continue
            unit_label = (f"{event.get('threat')}/{event.get('variant')}"
                          f" {event.get('mechanism') or '-'}"
                          f" [{event.get('role')}]")
            rows.append([unit_label, detection["verdicts"],
                         detection["flagged"], _opt(detection["flag_rate"]),
                         _opt(detection["tpr"]), _opt(detection["fpr"]),
                         _opt(detection["time_to_first_flag"]),
                         detection["missed_injections"]])
        if not rows:
            print("no unit_finished events carry detection telemetry "
                  "(defence-free campaign, or a pre-detection run log)")
            return 0
        print(format_table(["unit"] + _DETECTION_HEADERS[1:], rows,
                           title=f"detection verdicts: run log {args.path}"))
        return 0

    print(f"error: {args.path} is neither a platoonsec trace "
          "(format header) nor a run log (kind events)", file=sys.stderr)
    return 2


def cmd_tracediff(args) -> int:
    from repro.analysis.tracediff import diff_traces

    try:
        diff = diff_traces(args.trace_a, args.trace_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(diff.format())
    return 0 if diff.identical else 1


def cmd_bench_compare(args) -> int:
    from repro.obs.history import compare_records, load_history, load_record

    try:
        if args.old is not None and args.new is not None:
            old, new = load_record(args.old), load_record(args.new)
        else:
            history = load_history(args.history)
            if not history:
                raise ValueError(f"history {args.history} is empty")
            if args.old is not None:
                # One file: gate the latest history entry against it.
                old, new = load_record(args.old), history[-1]
            else:
                if args.last < 2:
                    raise ValueError("--last must be >= 2 (comparing an "
                                     "entry against itself is vacuous)")
                if len(history) < args.last:
                    raise ValueError(
                        f"history {args.history} holds {len(history)} "
                        f"record(s); --last {args.last} needs at least "
                        f"{args.last}")
                old, new = history[-args.last], history[-1]
        comparison = compare_records(
            old, new, wall_tolerance=args.wall_tolerance,
            metric_tolerance=args.metric_tolerance,
            expect_speedup=args.expect_speedup)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(comparison.format())
    return 0 if comparison.ok else 1


def cmd_report(args) -> int:
    from repro.obs.report import campaign_report, sweep_report, write_report

    runner = _make_runner(args)
    replicates = args.seed_replicates or 1
    if args.what == "catalogue":
        threats = _parse_only(args.only)
        outcomes = run_threat_catalogue(_base_config(args), threats=threats,
                                        seed_replicates=replicates,
                                        runner=runner)
        document = campaign_report(
            "Table II campaign", outcomes=outcomes,
            run_report=runner.report(), trace_dir=args.trace_dir)
        label, metrics = (_catalogue_label(args.only),
                          _catalogue_metrics(outcomes))
    elif args.what == "matrix":
        if args.target is not None \
                and args.target not in taxonomy.MECHANISMS:
            raise ValueError(f"unknown mechanism {args.target!r}; expected "
                             f"from {sorted(taxonomy.MECHANISMS)}")
        cells = run_defense_matrix(
            _base_config(args),
            mechanisms=[args.target] if args.target else None,
            seed_replicates=replicates, runner=runner)
        document = campaign_report(
            "Table III defence matrix", cells=cells,
            run_report=runner.report(), trace_dir=args.trace_dir)
        label = f"matrix[{args.target}]" if args.target else "matrix"
        metrics = _matrix_metrics(cells)
    else:                                                   # sweep
        from repro.sweep import SweepEngine

        if args.target is None:
            raise ValueError("report sweep needs a spec file or preset "
                             "name (see 'sweep --list-presets')")
        spec = _resolve_sweep_spec(args.target, args)
        result = SweepEngine(runner=runner).run(spec)
        document = sweep_report(result, run_report=runner.report(),
                                trace_dir=args.trace_dir)
        label, metrics = f"sweep[{spec.name}]", _sweep_metrics(result)
    if runner.telemetry is not None:
        runner.telemetry.close()
    path = write_report(args.out, document)
    print(f"report: {path}")
    _append_bench_history(args, label, runner, metrics)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--vehicles", type=int, default=8)
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trucks", action="store_true")
    parser.add_argument("--kernel", choices=("scalar", "vector"),
                        default="scalar",
                        help="simulation kernel: per-vehicle objects "
                             "(scalar, default) or numpy-pooled arrays "
                             "(vector); trace-equivalent by construction")
    parser.add_argument("--fading", choices=("shared", "pairwise"),
                        default="shared",
                        help="fading RNG streams: the legacy shared "
                             "simulator stream (default) or counter-based "
                             "per-pair streams (batchable, registration-"
                             "order independent; changes episode content)")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker-pool size (1 = serial)")
    parser.add_argument("--store", default=None,
                        help="persistent result store URL: json:<dir> "
                             "(one file per episode hash) or "
                             "sqlite:<path> (single WAL database, safe "
                             "for concurrent runners)")
    parser.add_argument("--cache-dir", default=None,
                        help="removed: use --store json:<dir> instead")
    parser.add_argument("--trace-dir", default=None,
                        help="directory for per-unit JSONL episode traces")
    parser.add_argument("--profile", action="store_true",
                        help="enable profiling spans and print the "
                             "aggregated counters/timers")
    parser.add_argument("--report", action="store_true",
                        help="print the per-unit campaign report")
    parser.add_argument("--seed-replicates", type=int, default=None,
                        help="run every campaign unit / sweep point at N "
                             "derived seeds and report mean±std")
    parser.add_argument("--run-log", default=None,
                        help="stream one JSON event line per run/unit/phase "
                             "transition to this file (defaults to "
                             "run-log.jsonl inside/next to the --store "
                             "backend when one is configured)")
    parser.add_argument("--progress", action="store_true",
                        help="force the live stderr progress line "
                             "(auto-enabled only when stderr is a TTY)")
    parser.add_argument("--bench-history", default=None,
                        help="append one platoonsec-bench/1 record per "
                             "campaign/sweep run to this JSONL history "
                             "file (see bench-compare)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_attack = sub.add_parser("attack", help="run one Table II experiment")
    p_attack.add_argument("threat", choices=sorted(taxonomy.THREATS))
    p_attack.add_argument("--variant", default=None)
    p_attack.set_defaults(fn=cmd_attack)

    p_cat = sub.add_parser("catalogue", help="run the full Table II campaign")
    p_cat.add_argument("--only", default=None,
                       help="comma-separated threat subset to run")
    p_cat.set_defaults(fn=cmd_catalogue)

    p_highway = sub.add_parser(
        "highway",
        help="run the multi-platoon highway campaign cells",
        epilog="exit codes:\n"
               "  0  every highway cell produced a usable impact ratio\n"
               "  1  some cell's impact ratio was degenerate\n"
               "  2  usage error",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_highway.add_argument("--observables", action="store_true",
                           help="print per-cell attack observables "
                                "(ghost admissions, merge counters, ...)")
    p_highway.set_defaults(fn=cmd_highway)

    p_matrix = sub.add_parser("matrix", help="run the Table III matrix")
    p_matrix.add_argument("mechanism", nargs="?", default=None,
                          choices=sorted(taxonomy.MECHANISMS))
    p_matrix.set_defaults(fn=cmd_matrix)

    p_exp = sub.add_parser("experiment",
                           help="run a declarative experiment spec")
    p_exp.add_argument("spec",
                       help="experiment spec JSON file, or a "
                            "'<threat>[/variant]' catalogue reference")
    p_exp.set_defaults(fn=cmd_experiment)

    p_fals = sub.add_parser(
        "falsify",
        help="search for an attack schedule that violates safety",
        epilog="exit codes:\n"
               "  0  violation found (and emitted unless --no-emit)\n"
               "  1  no violation within the episode budget\n"
               "  2  usage error or unsafe baseline",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_fals.add_argument("spec",
                        help="experiment spec JSON file, or a "
                             "'<threat>[/variant]' catalogue reference")
    p_fals.add_argument("--episodes", type=int, default=48,
                        help="episode budget for the whole search "
                             "(default: %(default)s)")
    p_fals.add_argument("--samples-per-round", type=int, default=8,
                        help="random schedules per sampling round "
                             "(default: %(default)s)")
    p_fals.add_argument("--rounds", type=int, default=3,
                        help="seeded sampling rounds (default: %(default)s)")
    p_fals.add_argument("--descent-passes", type=int, default=4,
                        help="coordinate-descent passes "
                             "(default: %(default)s)")
    p_fals.add_argument("--tighten-grid", type=int, default=5,
                        help="intensity grid points for the tightening "
                             "stage (default: %(default)s)")
    p_fals.add_argument("--max-windows", type=int, default=2,
                        help="most attack windows per schedule "
                             "(default: %(default)s)")
    p_fals.add_argument("--attack-seconds", type=float, default=None,
                        help="attacker budget: total active attack "
                             "seconds (default: the whole post-warmup "
                             "episode)")
    p_fals.add_argument("--tune", default=None,
                        help="comma-separated attack parameters to scale "
                             "(default: every non-zero float parameter)")
    p_fals.add_argument("--corpus-dir", default="tests/corpus",
                        help="where found counterexamples are emitted "
                             "(default: %(default)s)")
    p_fals.add_argument("--name", default=None,
                        help="corpus entry name (default: "
                             "<threat>-<spec hash>)")
    p_fals.add_argument("--no-emit", action="store_true",
                        help="search only; do not write a corpus entry")
    p_fals.set_defaults(fn=cmd_falsify)

    p_exps = sub.add_parser("experiments",
                            help="list or validate the experiment catalogue")
    p_exps.add_argument("specs", nargs="*", default=[],
                        help="spec files to validate (with --validate)")
    p_exps.add_argument("--list", action="store_true",
                        help="list the catalogued experiments and defence "
                             "stacks (the default)")
    p_exps.add_argument("--validate", action="store_true",
                        help="validate the catalogue, or the given spec "
                             "files, without running anything")
    p_exps.set_defaults(fn=cmd_experiments)

    p_sweep = sub.add_parser("sweep",
                             help="run a declarative parameter sweep")
    p_sweep.add_argument("spec", nargs="?", default=None,
                         help="sweep spec JSON file or preset name")
    p_sweep.add_argument("--out-dir", default=None,
                         help="write the platoonsec-sweep/1 JSON + CSV "
                              "artifacts into this directory")
    p_sweep.add_argument("--list-presets", action="store_true",
                         help="list the shipped sweep presets and exit")
    p_sweep.set_defaults(fn=cmd_sweep)

    exit_codes = ("exit codes:\n"
                  "  0  inputs are identical / within tolerance\n"
                  "  1  divergence found\n"
                  "  2  usage error (missing, unreadable or invalid input)")

    p_diff = sub.add_parser("tracediff",
                            help="compare two JSONL episode traces",
                            epilog=exit_codes,
                            formatter_class=argparse.RawDescriptionHelpFormatter)
    p_diff.add_argument("trace_a")
    p_diff.add_argument("trace_b")
    p_diff.set_defaults(fn=cmd_tracediff)

    p_det = sub.add_parser(
        "detections",
        help="summarize security verdicts from a trace or run log",
        epilog="exit codes:\n"
               "  0  summary printed (possibly empty)\n"
               "  2  unreadable or unrecognized input",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_det.add_argument("path",
                       help="JSONL episode trace (verdict records) or "
                            "campaign run log (unit_finished detection "
                            "projections)")
    p_det.set_defaults(fn=cmd_detections)

    p_bench = sub.add_parser(
        "bench-compare",
        help="diff two platoonsec-bench/1 records under drift tolerances",
        epilog=exit_codes,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p_bench.add_argument("old", nargs="?", default=None,
                         help="old bench-record JSON file (e.g. a CI "
                              "golden); omit both files to compare "
                              "history entries")
    p_bench.add_argument("new", nargs="?", default=None,
                         help="new bench-record JSON file; when omitted, "
                              "the latest --history entry is the new side")
    p_bench.add_argument("--history", default="BENCH_history.jsonl",
                         help="JSONL bench history written by "
                              "--bench-history (default: %(default)s)")
    p_bench.add_argument("--last", type=int, default=2,
                         help="with no record files: compare the Nth-from-"
                              "last history entry against the latest "
                              "(default: %(default)s)")
    p_bench.add_argument("--wall-tolerance", type=float, default=1.0,
                         help="allowed relative wall-time slowdown "
                              "(default: %(default)s, i.e. up to 2x)")
    p_bench.add_argument("--metric-tolerance", type=float, default=0.05,
                         help="allowed relative metric drift, both "
                              "directions (default: %(default)s)")
    p_bench.add_argument("--expect-speedup", type=float, default=None,
                         help="fail unless the new record's wall time is "
                              "at least this factor faster than the old "
                              "one (kernel-bench gate)")
    p_bench.set_defaults(fn=cmd_bench_compare)

    p_report = sub.add_parser(
        "report",
        help="run a campaign/sweep and render a self-contained HTML report")
    p_report.add_argument("what", choices=["catalogue", "matrix", "sweep"],
                          help="what to run and render")
    p_report.add_argument("target", nargs="?", default=None,
                          help="matrix: one mechanism row; sweep: spec "
                               "file or preset name")
    p_report.add_argument("--only", default=None,
                          help="catalogue: comma-separated threat subset")
    p_report.add_argument("--out", default="platoonsec-report.html",
                          help="output HTML path (default: %(default)s)")
    p_report.set_defaults(fn=cmd_report)

    p_store = sub.add_parser(
        "store",
        help="inspect and maintain persistent result stores",
        epilog="store URLs: json:<dir> | sqlite:<path>",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    store_sub = p_store.add_subparsers(dest="store_cmd", required=True)
    p_sstats = store_sub.add_parser(
        "stats", help="entry/byte/lease counts for one store")
    p_sstats.add_argument("url", help="store URL (json:<dir>|sqlite:<path>)")
    p_sstats.set_defaults(fn=cmd_store_stats)
    p_sgc = store_sub.add_parser(
        "gc", help="drop old entries and expired leases")
    p_sgc.add_argument("url", help="store URL (json:<dir>|sqlite:<path>)")
    p_sgc.add_argument("--older-than", default=None,
                       help="delete entries older than this age "
                            "(e.g. 7d, 36h, 90m, 3600); with no age, "
                            "only expired leases and write debris go")
    p_sgc.set_defaults(fn=cmd_store_gc)
    p_smig = store_sub.add_parser(
        "migrate",
        help="copy every record between stores (round-trip verified)")
    p_smig.add_argument("src", help="source store URL (must exist)")
    p_smig.add_argument("dst", help="destination store URL (created)")
    p_smig.set_defaults(fn=cmd_store_migrate)
    p_sver = store_sub.add_parser(
        "verify", help="re-check every entry against its content key")
    p_sver.add_argument("url", help="store URL (json:<dir>|sqlite:<path>)")
    p_sver.set_defaults(fn=cmd_store_verify)

    sub.add_parser("taxonomy", help="print the machine-readable tables") \
        .set_defaults(fn=cmd_taxonomy)
    sub.add_parser("risk", help="print the TARA risk report") \
        .set_defaults(fn=cmd_risk)

    args = parser.parse_args(argv)
    if args.profile:
        obs.set_profiling(True)
    try:
        return args.fn(args)
    except ValueError as exc:
        # Runner construction errors (unwritable trace/cache dirs) are
        # user errors, not crashes: report and exit with a distinct code.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
