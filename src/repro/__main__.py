"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack <threat> [options]``
    Run one canonical Table II attack experiment (baseline vs attacked)
    and print the outcome.
``catalogue``
    Run the full Table II campaign.
``matrix [mechanism]``
    Run the Table III defence matrix (optionally one mechanism row).

The campaign commands (``catalogue``, ``matrix``) execute through the
campaign engine: ``--workers N`` fans episodes over a process pool,
``--cache-dir DIR`` persists/reuses episode results across invocations,
``--trace-dir DIR`` streams one schema-versioned JSONL trace per
computed unit (named by content hash), ``--profile`` enables profiling
spans and prints the aggregated counters/timers, and ``--report``
prints the per-unit cache/timing breakdown.
``experiment <specfile.json|threat[/variant]>``
    Run one declarative ``platoonsec-experiment/1`` spec (baseline vs
    attacked, plus a defended episode when the spec declares defences).
    Accepts a spec JSON file or a catalogue reference like
    ``jamming`` / ``malware/obd``.
``experiments [--list|--validate] [spec ...]``
    List the registry-backed experiment catalogue and defence stacks, or
    validate the catalogue / the given spec files without running them.
``sweep <specfile.json|preset>``
    Expand a declarative parameter sweep (grid/seeded-random axes over
    scenario, channel, vehicle or attack/defence parameters, with
    ``seed_replicates`` per point) through the campaign engine, print
    the dose-response table and threshold estimates, and -- with
    ``--out-dir`` -- write the byte-deterministic ``platoonsec-sweep/1``
    JSON + CSV artifacts.  ``sweep --list-presets`` names the shipped
    presets.
``tracediff <a> <b>``
    Compare two trace files and name the first divergent record.
``taxonomy``
    Print Tables I/II/III from the machine-readable taxonomy and verify
    the implementation registry.
``risk``
    Print the platoon TARA risk report.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.analysis.tables import format_table
from repro.core import taxonomy
from repro.core.campaign import (
    run_defense_matrix,
    run_threat_catalogue,
    run_threat_experiment,
    threat_experiment,
)
from repro.core.runner import CampaignRunner
from repro.core.scenario import ScenarioConfig


def _base_config(args) -> ScenarioConfig:
    return ScenarioConfig(n_vehicles=args.vehicles, duration=args.duration,
                          warmup=10.0, seed=args.seed, trucks=args.trucks)


def _make_runner(args) -> CampaignRunner:
    return CampaignRunner(workers=args.workers, cache_dir=args.cache_dir,
                          trace_dir=args.trace_dir)


def _print_report(runner: CampaignRunner, args) -> None:
    report = runner.report()
    if args.report:
        print(report.format())
    if args.profile:
        print(report.format_observability())
    print(report.summary())


def _print_listing(headers, rows, title) -> int:
    """The one table-formatting path shared by every catalogue-style
    listing (``experiments --list``, ``sweep --list-presets``)."""
    print(format_table(headers, rows, title=title))
    return 0


def cmd_attack(args) -> int:
    experiment = threat_experiment(args.threat, _base_config(args),
                                   variant=args.variant)
    outcome = run_threat_experiment(experiment)
    print(format_table(
        ["threat", "variant", "metric", "baseline", "attacked", "effect"],
        [[outcome.threat_key, outcome.variant, outcome.metric_name,
          round(outcome.baseline_value, 3), round(outcome.attacked_value, 3),
          "CONFIRMED" if outcome.effect_present else "no effect"]]))
    for key, value in sorted(outcome.attack_observables.items()):
        print(f"  {key} = {value}")
    if args.profile:
        print(obs.format_snapshot(obs.get_registry().snapshot(),
                                  title="episode observability"))
    return 0 if outcome.effect_present else 1


def _pm(value: float, std: float, replicates: int, digits: int = 3) -> str:
    """``mean±std`` when replicated, plain value otherwise."""
    if replicates > 1:
        return f"{round(value, digits)}±{round(std, digits)}"
    return str(round(value, digits))


def cmd_catalogue(args) -> int:
    threats = None
    if args.only is not None:
        threats = [key for key in args.only.split(",") if key]
        unknown = [key for key in threats if key not in taxonomy.THREATS]
        if unknown:
            print(f"error: unknown threats {unknown}; expected from "
                  f"{sorted(taxonomy.THREATS)}", file=sys.stderr)
            return 2
        if not threats:
            print("error: empty campaign -- no threats selected",
                  file=sys.stderr)
            return 2
    runner = _make_runner(args)
    outcomes = run_threat_catalogue(_base_config(args), threats=threats,
                                    seed_replicates=args.seed_replicates or 1,
                                    runner=runner)
    rows = [[o.threat_key, o.variant, o.metric_name,
             _pm(o.baseline_value, o.baseline_std, o.replicates),
             _pm(o.attacked_value, o.attacked_std, o.replicates),
             "CONFIRMED" if o.effect_present else "no effect"]
            for o in outcomes]
    print(format_table(["threat", "variant", "metric", "baseline",
                        "attacked", "effect"], rows,
                       title="Table II campaign"))
    _print_report(runner, args)
    return 0 if all(o.effect_present for o in outcomes) else 1


def cmd_matrix(args) -> int:
    runner = _make_runner(args)
    mechanisms = [args.mechanism] if args.mechanism else None
    cells = run_defense_matrix(_base_config(args), mechanisms=mechanisms,
                               seed_replicates=args.seed_replicates or 1,
                               runner=runner)
    rows = [[c.mechanism_key, c.threat_key, c.metric_name,
             _pm(c.baseline_value, c.baseline_std, c.replicates),
             _pm(c.attacked_value, c.attacked_std, c.replicates),
             _pm(c.defended_value, c.defended_std, c.replicates),
             round(c.mitigation, 2) if c.mitigation is not None else "n/a"]
            for c in cells]
    print(format_table(["mechanism", "threat", "metric", "baseline",
                        "attacked", "defended", "mitigation"], rows,
                       title="Table III defence matrix"))
    _print_report(runner, args)
    return 0


def cmd_experiment(args) -> int:
    from pathlib import Path

    from repro.core.campaign import run_experiment_spec
    from repro.core.experiment import load_experiment_spec
    from repro.experiments import experiment_spec

    if Path(args.spec).exists():
        spec = load_experiment_spec(args.spec)
    else:
        threat, _, variant = args.spec.partition("/")
        if threat not in taxonomy.THREATS:
            print(f"error: {args.spec!r} is neither an experiment spec file "
                  "nor a '<threat>[/variant]' catalogue reference "
                  f"(threats: {sorted(taxonomy.THREATS)})", file=sys.stderr)
            return 2
        spec = experiment_spec(threat, variant or None)
    run = run_experiment_spec(spec, _base_config(args))
    outcome = run.outcome
    headers = ["experiment", "metric", "baseline", "attacked"]
    row = [spec.display_name, outcome.metric_name,
           round(outcome.baseline_value, 3), round(outcome.attacked_value, 3)]
    if run.defended_value is not None:
        headers += ["defended", "mitigation"]
        row += [round(run.defended_value, 3),
                (round(run.mitigation, 2) if run.mitigation is not None
                 else "n/a")]
    headers.append("effect")
    row.append("CONFIRMED" if outcome.effect_present else "no effect")
    print(format_table(headers, [row],
                       title=f"experiment {spec.display_name} "
                             f"({spec.threat}/{spec.variant})"))
    for key, value in sorted(outcome.attack_observables.items()):
        print(f"  {key} = {value}")
    if args.profile:
        print(obs.format_snapshot(obs.get_registry().snapshot(),
                                  title="episode observability"))
    return 0 if outcome.effect_present else 1


def cmd_experiments(args) -> int:
    from repro.core.experiment import load_experiment_spec
    from repro.experiments import (
        check_catalogue_complete,
        iter_defense_stacks,
        iter_experiment_specs,
    )

    if args.validate:
        if args.specs:
            failures = []
            for path in args.specs:
                try:
                    spec = load_experiment_spec(path)
                except (OSError, ValueError) as exc:
                    failures.append((path, str(exc)))
                    continue
                print(f"{path}: ok ({spec.display_name})")
            for path, reason in failures:
                print(f"{path}: INVALID -- {reason}", file=sys.stderr)
            return 2 if failures else 0
        problems = check_catalogue_complete()
        if problems:
            print("CATALOGUE PROBLEMS:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print("catalogue check: every threat, variant and mechanism "
              "resolves through the registry.")
        return 0
    experiment_rows = [
        [threat, variant, "*" if is_default else "",
         ", ".join(c.key for c in spec.attacks), spec.metric.name]
        for threat, variant, is_default, spec in iter_experiment_specs()]
    _print_listing(["threat", "variant", "default", "attacks", "metric"],
                   experiment_rows, "experiment catalogue (Table II)")
    stack_rows = [
        [mechanism, ", ".join(c.key for c in stack.defenses),
         ", ".join(f"{k}={v}" for k, v in sorted(stack.requirements.items()))
         or "-"]
        for mechanism, stack in iter_defense_stacks()]
    return _print_listing(["mechanism", "defenses", "requirements"],
                          stack_rows, "\ndefence stacks (Table III)")


def cmd_sweep(args) -> int:
    from repro.sweep import PRESETS, SweepEngine, load_sweep_spec
    from repro.sweep.artifacts import write_sweep_artifacts

    if args.list_presets:
        return _print_listing(
            ["preset", "threat", "axes", "replicates"],
            [[spec.name, spec.threat,
              ", ".join(axis.path for axis in spec.axes),
              spec.seed_replicates]
             for spec in PRESETS.values()],
            "shipped sweep presets")
    if args.spec is None:
        print("error: sweep needs a spec file or preset name "
              "(see 'sweep --list-presets')", file=sys.stderr)
        return 2
    if args.spec in PRESETS:
        spec = PRESETS[args.spec]
    else:
        from pathlib import Path

        if not Path(args.spec).exists():
            print(f"error: {args.spec!r} is neither a shipped preset "
                  f"({sorted(PRESETS)}) nor a spec file", file=sys.stderr)
            return 2
        spec = load_sweep_spec(args.spec)
    spec = spec.resolved(
        root_seed=args.seed,
        seed_replicates=args.seed_replicates,
        base_defaults={"n_vehicles": args.vehicles,
                       "duration": args.duration,
                       "warmup": 10.0, "trucks": args.trucks})
    engine = SweepEngine(runner=_make_runner(args))
    result = engine.run(spec)
    rows = []
    for point in result.points:
        rows.append([
            point.label,
            _pm(point.baseline["mean"], point.baseline["std"],
                point.replicates),
            _pm(point.attacked["mean"], point.attacked["std"],
                point.replicates),
            (round(point.impact_ratio["mean"], 2)
             if point.impact_ratio else "n/a"),
            round(point.effect_rate, 2),
            round(point.disband_rate, 2),
            round(point.detection_rate, 2),
        ])
    print(format_table(
        ["point", f"baseline {result.points[0].metric}" if result.points
         else "baseline", "attacked", "impact ratio", "effect rate",
         "disband rate", "detection rate"], rows,
        title=f"sweep {spec.name} ({spec.seed_replicates} replicate(s) "
              f"per point, root seed {spec.root_seed})"))
    for estimate in result.thresholds:
        where = ("never reached" if estimate.crossing is None
                 else f"first crossed at {estimate.crossing:g}")
        print(f"threshold {estimate.response} >= {estimate.level:g}: {where}")
    if args.out_dir is not None:
        paths = write_sweep_artifacts(result, args.out_dir)
        print(f"artifacts: {paths['json']} {paths['csv']}")
    _print_report(engine.runner, args)
    return 0


def cmd_taxonomy(args) -> int:
    print(format_table(
        ["key", "survey", "year"],
        [[s.key, s.authors, s.year] for s in taxonomy.SURVEYS.values()],
        title="Table I -- related surveys"))
    print(format_table(
        ["key", "threat", "compromises", "implementations"],
        [[t.key, t.display_name,
          "/".join(a.value for a in t.compromises),
          ", ".join(t.attack_impls)] for t in taxonomy.THREATS.values()],
        title="\nTable II -- threats"))
    print(format_table(
        ["key", "mechanism", "targets", "implementations"],
        [[m.key, m.display_name, ", ".join(m.attack_targets),
          ", ".join(m.defense_impls)] for m in taxonomy.MECHANISMS.values()],
        title="\nTable III -- mechanisms"))
    problems = taxonomy.check_taxonomy_complete()
    if problems:
        print("\nREGISTRY PROBLEMS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nregistry check: every catalogued row is implemented.")
    return 0


def cmd_risk(args) -> int:
    from repro.risk import build_platoon_tara, format_risk_report

    print(format_risk_report(build_platoon_tara()))
    return 0


def cmd_tracediff(args) -> int:
    from repro.analysis.tracediff import diff_traces

    try:
        diff = diff_traces(args.trace_a, args.trace_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(diff.format())
    return 0 if diff.identical else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--vehicles", type=int, default=8)
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trucks", action="store_true")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker-pool size (1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent episode-cache directory")
    parser.add_argument("--trace-dir", default=None,
                        help="directory for per-unit JSONL episode traces")
    parser.add_argument("--profile", action="store_true",
                        help="enable profiling spans and print the "
                             "aggregated counters/timers")
    parser.add_argument("--report", action="store_true",
                        help="print the per-unit campaign report")
    parser.add_argument("--seed-replicates", type=int, default=None,
                        help="run every campaign unit / sweep point at N "
                             "derived seeds and report mean±std")
    sub = parser.add_subparsers(dest="command", required=True)

    p_attack = sub.add_parser("attack", help="run one Table II experiment")
    p_attack.add_argument("threat", choices=sorted(taxonomy.THREATS))
    p_attack.add_argument("--variant", default=None)
    p_attack.set_defaults(fn=cmd_attack)

    p_cat = sub.add_parser("catalogue", help="run the full Table II campaign")
    p_cat.add_argument("--only", default=None,
                       help="comma-separated threat subset to run")
    p_cat.set_defaults(fn=cmd_catalogue)

    p_matrix = sub.add_parser("matrix", help="run the Table III matrix")
    p_matrix.add_argument("mechanism", nargs="?", default=None,
                          choices=sorted(taxonomy.MECHANISMS))
    p_matrix.set_defaults(fn=cmd_matrix)

    p_exp = sub.add_parser("experiment",
                           help="run a declarative experiment spec")
    p_exp.add_argument("spec",
                       help="experiment spec JSON file, or a "
                            "'<threat>[/variant]' catalogue reference")
    p_exp.set_defaults(fn=cmd_experiment)

    p_exps = sub.add_parser("experiments",
                            help="list or validate the experiment catalogue")
    p_exps.add_argument("specs", nargs="*", default=[],
                        help="spec files to validate (with --validate)")
    p_exps.add_argument("--list", action="store_true",
                        help="list the catalogued experiments and defence "
                             "stacks (the default)")
    p_exps.add_argument("--validate", action="store_true",
                        help="validate the catalogue, or the given spec "
                             "files, without running anything")
    p_exps.set_defaults(fn=cmd_experiments)

    p_sweep = sub.add_parser("sweep",
                             help="run a declarative parameter sweep")
    p_sweep.add_argument("spec", nargs="?", default=None,
                         help="sweep spec JSON file or preset name")
    p_sweep.add_argument("--out-dir", default=None,
                         help="write the platoonsec-sweep/1 JSON + CSV "
                              "artifacts into this directory")
    p_sweep.add_argument("--list-presets", action="store_true",
                         help="list the shipped sweep presets and exit")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_diff = sub.add_parser("tracediff",
                            help="compare two JSONL episode traces")
    p_diff.add_argument("trace_a")
    p_diff.add_argument("trace_b")
    p_diff.set_defaults(fn=cmd_tracediff)

    sub.add_parser("taxonomy", help="print the machine-readable tables") \
        .set_defaults(fn=cmd_taxonomy)
    sub.add_parser("risk", help="print the TARA risk report") \
        .set_defaults(fn=cmd_risk)

    args = parser.parse_args(argv)
    if args.profile:
        obs.set_profiling(True)
    try:
        return args.fn(args)
    except ValueError as exc:
        # Runner construction errors (unwritable trace/cache dirs) are
        # user errors, not crashes: report and exit with a distinct code.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
