"""CAN-like in-vehicle bus.

A broadcast bus with arbitration IDs and -- critically for the paper's
§V-G/H analysis -- **no sender authentication**: any node that can transmit
on the bus can claim any arbitration ID.  That is exactly the property a
compromised TPMS receiver or infotainment ECU exploits to inject frames
"pretending to be other systems on the CAN network".

A :class:`~repro.onboard.hardening.Firewall` may be installed on the bus to
model gateway segmentation (only allow-listed (source, arbitration-id)
pairs pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.onboard.ecu import Ecu
    from repro.onboard.hardening import Firewall


@dataclass(frozen=True)
class CanFrame:
    """One bus frame.  ``claimed_source`` is the arbitration-id level
    identity, which need not match the physically transmitting ECU."""

    arbitration_id: int
    claimed_source: str
    data: dict
    physical_sender: str = ""     # ground truth, invisible to receivers


@dataclass
class BusStats:
    frames: int = 0
    blocked_by_firewall: int = 0
    spoofed_source_frames: int = 0   # ground-truth count of forged claims


class CanBus:
    """Broadcast bus connecting a vehicle's ECUs."""

    def __init__(self) -> None:
        self._ecus: dict[str, "Ecu"] = {}
        self.firewall: Optional["Firewall"] = None
        self.stats = BusStats()
        self._taps: list[Callable[[CanFrame], None]] = []

    def attach(self, ecu: "Ecu") -> None:
        if ecu.ecu_id in self._ecus:
            raise ValueError(f"duplicate ECU id {ecu.ecu_id!r}")
        self._ecus[ecu.ecu_id] = ecu
        ecu.bus = self

    def ecus(self) -> list["Ecu"]:
        return list(self._ecus.values())

    def get(self, ecu_id: str) -> Optional["Ecu"]:
        return self._ecus.get(ecu_id)

    def install_firewall(self, firewall: "Firewall") -> None:
        self.firewall = firewall

    def add_tap(self, tap: Callable[[CanFrame], None]) -> None:
        """Bus-level observer (intrusion-detection sensors hook in here)."""
        self._taps.append(tap)

    def transmit(self, sender: "Ecu", arbitration_id: int,
                 data: dict, claimed_source: Optional[str] = None) -> bool:
        """Broadcast a frame.  Returns False if a firewall blocked it."""
        claimed = claimed_source if claimed_source is not None else sender.ecu_id
        frame = CanFrame(arbitration_id=arbitration_id, claimed_source=claimed,
                         data=dict(data), physical_sender=sender.ecu_id)
        if claimed != sender.ecu_id:
            self.stats.spoofed_source_frames += 1
        if self.firewall is not None and not self.firewall.allows(
                sender.ecu_id, arbitration_id):
            self.stats.blocked_by_firewall += 1
            return False
        self.stats.frames += 1
        for tap in self._taps:
            tap(frame)
        for ecu in self._ecus.values():
            if ecu is not sender and ecu.powered:
                ecu.receive(frame)
        return True
