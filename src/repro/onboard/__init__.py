"""On-board vehicle systems: ECU network, malware, hardening.

The miniature in-vehicle architecture the paper's §V-H malware narrative
needs: a broadcast CAN-like bus with no frame authentication, ECUs with
firmware images, infection vectors (OBD port, infected media, wireless),
and the §VI-A.5 counter-measures (firewall segmentation, antivirus
scanning, secure boot).
"""

from repro.onboard.bus import CanBus, CanFrame
from repro.onboard.ecu import Ecu, Firmware
from repro.onboard.malware import InfectionVector, MalwareStrain, OnboardNetwork
from repro.onboard.hardening import AntivirusScanner, Firewall, HardeningProfile, SecureBoot

__all__ = [
    "CanBus",
    "CanFrame",
    "Ecu",
    "Firmware",
    "InfectionVector",
    "MalwareStrain",
    "OnboardNetwork",
    "AntivirusScanner",
    "Firewall",
    "HardeningProfile",
    "SecureBoot",
]
