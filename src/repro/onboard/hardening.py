"""On-board hardening: firewall, antivirus, secure boot (§VI-A.5).

The paper recommends three concrete measures for on-board systems:
firewalls that "only allow components to communicate with what they need
to", simple antivirus on the on-board computer, and not executing
unauthorised content.  Each is implemented as a small, testable mechanism,
and :class:`HardeningProfile` bundles them for scenario configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.onboard.bus import CanBus
    from repro.onboard.ecu import Ecu


class Firewall:
    """Gateway segmentation: allow-list of (sender ECU, arbitration id).

    Anything not explicitly allowed is blocked, which prevents a
    compromised infotainment unit from injecting braking frames -- the
    lateral-movement step of §V-H.
    """

    def __init__(self) -> None:
        self._allowed: set[tuple[str, int]] = set()
        self.default_deny = True

    def allow(self, sender_id: str, arbitration_id: int) -> None:
        self._allowed.add((sender_id, arbitration_id))

    def allows(self, sender_id: str, arbitration_id: int) -> bool:
        if not self.default_deny:
            return True
        return (sender_id, arbitration_id) in self._allowed

    @staticmethod
    def standard_policy() -> "Firewall":
        """Least-privilege policy for the standard ECU suite."""
        from repro.onboard.ecu import ARBITRATION_IDS

        fw = Firewall()
        fw.allow("engine-ecu", ARBITRATION_IDS["engine"])
        fw.allow("brake-ecu", ARBITRATION_IDS["braking"])
        fw.allow("steering-ecu", ARBITRATION_IDS["steering"])
        fw.allow("tpms-ecu", ARBITRATION_IDS["tpms"])
        fw.allow("infotainment-ecu", ARBITRATION_IDS["infotainment"])
        fw.allow("obd-gateway", ARBITRATION_IDS["obd"])
        fw.allow("v2x-gateway", ARBITRATION_IDS["v2x"])
        return fw


class AntivirusScanner:
    """Signature-based scanner over ECU firmware images.

    Detection is probabilistic per strain: known signatures are detected
    with ``known_detection_prob``; unknown (zero-day) strains with the much
    lower ``heuristic_detection_prob``.  The paper's claim that "simple
    antivirus ... can reduce the chance of such an attack being successful"
    maps to a measurable reduction, not elimination.
    """

    def __init__(self, rng, known_signatures: Optional[set[str]] = None,
                 known_detection_prob: float = 0.95,
                 heuristic_detection_prob: float = 0.25) -> None:
        self.rng = rng
        self.known_signatures = set(known_signatures or set())
        self.known_detection_prob = known_detection_prob
        self.heuristic_detection_prob = heuristic_detection_prob
        self.scans = 0
        self.detections = 0

    def scan(self, ecu: "Ecu") -> bool:
        """Scan one ECU; on detection the infection is remediated."""
        self.scans += 1
        if not ecu.infected:
            return False
        if ecu.infection_name in self.known_signatures:
            p = self.known_detection_prob
        else:
            p = self.heuristic_detection_prob
        if self.rng.random() < p:
            self.detections += 1
            ecu.disinfect()
            return True
        return False

    def scan_all(self, bus: "CanBus") -> int:
        return sum(1 for ecu in bus.ecus() if self.scan(ecu))


class SecureBoot:
    """Boot-time firmware integrity check against factory hashes.

    An ECU whose image digest no longer matches its trusted digest is
    refused boot (powered off) -- persistence is denied even when the
    initial drop succeeded.
    """

    def __init__(self) -> None:
        self.boots = 0
        self.refused = 0

    def boot(self, ecu: "Ecu") -> bool:
        self.boots += 1
        if ecu.firmware_intact():
            ecu.powered = True
            return True
        self.refused += 1
        ecu.powered = False
        return False

    def boot_all(self, bus: "CanBus") -> list[str]:
        """Boot every ECU; returns the ids refused for tampered firmware."""
        return [ecu.ecu_id for ecu in bus.ecus() if not self.boot(ecu)]


@dataclass
class HardeningProfile:
    """Scenario-level bundle of on-board defences."""

    firewall: bool = False
    antivirus: bool = False
    secure_boot: bool = False
    media_allowlist: bool = False   # refuse unauthorised media content
    av_scan_interval: float = 10.0  # [s] periodic scan cadence

    @staticmethod
    def none() -> "HardeningProfile":
        return HardeningProfile()

    @staticmethod
    def full() -> "HardeningProfile":
        return HardeningProfile(firewall=True, antivirus=True,
                                secure_boot=True, media_allowlist=True)
