"""Electronic control units with firmware images.

Each :class:`Ecu` runs a :class:`Firmware` image identified by a content
hash; malware infection rewrites the image (changing the hash, which is
what :class:`~repro.onboard.hardening.SecureBoot` detects at the next
boot).  ECUs expose *services* -- named capabilities like ``"v2x"`` or
``"braking"`` -- that malware payloads disable or subvert.

Standard arbitration IDs used across the suite (loosely modelled on real
powertrain/chassis allocations):

====================  =====
service               arb id
====================  =====
engine / powertrain   0x0C0
braking               0x1A0
steering              0x1C2
tpms                  0x3B0
infotainment          0x5F0
obd gateway           0x7DF
v2x gateway           0x6A0
====================  =====
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.onboard.bus import CanBus, CanFrame

ARBITRATION_IDS = {
    "engine": 0x0C0,
    "braking": 0x1A0,
    "steering": 0x1C2,
    "tpms": 0x3B0,
    "infotainment": 0x5F0,
    "obd": 0x7DF,
    "v2x": 0x6A0,
}


@dataclass
class Firmware:
    """A firmware image with integrity-relevant identity."""

    name: str
    version: str
    body: bytes

    def digest(self) -> bytes:
        return hashlib.sha256(self.name.encode() + self.version.encode()
                              + self.body).digest()

    def tampered_copy(self, payload: bytes) -> "Firmware":
        """A maliciously rewritten image (same name/version, altered body)."""
        return Firmware(name=self.name, version=self.version,
                        body=self.body + b"|MAL|" + payload)


class Ecu:
    """One electronic control unit.

    ``exposed_interfaces`` lists the external attack surfaces this ECU
    carries (``"obd"``, ``"media"``, ``"wireless"``); infection vectors can
    only land on an ECU exposing the matching interface, mirroring the
    attack-surface analysis of Checkoway et al. [21].
    """

    def __init__(self, ecu_id: str, firmware: Firmware,
                 services: Optional[list[str]] = None,
                 exposed_interfaces: Optional[list[str]] = None) -> None:
        self.ecu_id = ecu_id
        self.firmware = firmware
        self.trusted_digest = firmware.digest()   # factory-known-good hash
        self.services = list(services or [])
        self.exposed_interfaces = list(exposed_interfaces or [])
        self.bus: Optional["CanBus"] = None
        self.powered = True
        self.infected = False
        self.infection_name: Optional[str] = None
        self.disabled_services: set[str] = set()
        self.rx_frames: list["CanFrame"] = []
        self._handlers: list[Callable[["CanFrame"], None]] = []

    # ------------------------------------------------------------------- bus

    def send(self, arbitration_id: int, data: dict,
             claimed_source: Optional[str] = None) -> bool:
        if self.bus is None or not self.powered:
            return False
        return self.bus.transmit(self, arbitration_id, data, claimed_source)

    def receive(self, frame: "CanFrame") -> None:
        self.rx_frames.append(frame)
        if len(self.rx_frames) > 256:
            del self.rx_frames[:128]
        for handler in self._handlers:
            handler(frame)

    def on_frame(self, handler: Callable[["CanFrame"], None]) -> None:
        self._handlers.append(handler)

    # -------------------------------------------------------------- integrity

    def firmware_intact(self) -> bool:
        return self.firmware.digest() == self.trusted_digest

    def infect(self, infection_name: str, payload: bytes) -> None:
        """Rewrite the firmware (what a successful malware drop does)."""
        self.firmware = self.firmware.tampered_copy(payload)
        self.infected = True
        self.infection_name = infection_name

    def disinfect(self) -> None:
        """Restore the factory image (antivirus remediation)."""
        self.firmware = Firmware(name=self.firmware.name,
                                 version=self.firmware.version,
                                 body=self.firmware.body.split(b"|MAL|")[0])
        self.infected = False
        self.infection_name = None
        self.disabled_services.clear()

    # --------------------------------------------------------------- services

    def service_available(self, service: str) -> bool:
        return (self.powered and service in self.services
                and service not in self.disabled_services)

    def disable_service(self, service: str) -> None:
        if service in self.services:
            self.disabled_services.add(service)

    def __repr__(self) -> str:
        flag = " INFECTED" if self.infected else ""
        return f"<Ecu {self.ecu_id} fw={self.firmware.version}{flag}>"


def standard_ecu_suite() -> list[Ecu]:
    """The default ECU complement of a platoon-enabled vehicle."""

    def fw(name: str) -> Firmware:
        return Firmware(name=name, version="1.0", body=f"{name}-factory".encode())

    return [
        Ecu("engine-ecu", fw("engine"), services=["engine"]),
        Ecu("brake-ecu", fw("brake"), services=["braking"]),
        Ecu("steering-ecu", fw("steering"), services=["steering"]),
        Ecu("tpms-ecu", fw("tpms"), services=["tpms"],
            exposed_interfaces=["wireless"]),
        Ecu("infotainment-ecu", fw("infotainment"),
            services=["infotainment"], exposed_interfaces=["media", "wireless"]),
        Ecu("obd-gateway", fw("obd"), services=["diagnostics"],
            exposed_interfaces=["obd"]),
        Ecu("v2x-gateway", fw("v2x"), services=["v2x"],
            exposed_interfaces=["wireless"]),
    ]
