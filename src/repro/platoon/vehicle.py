"""The platoon-enabled vehicle: dynamics + radio + sensors + roles.

:class:`Vehicle` is the composition point of the whole substrate.  Each
vehicle owns:

* a longitudinal dynamics model ticked at a fixed control period,
* a radio on the shared 802.11p-like channel (and optionally a VLC
  endpoint for the hybrid defence),
* GPS / forward-ranging / TPMS sensors,
* a *beacon knowledge base* -- the latest state heard from each other
  vehicle, which is exactly the data falsification attacks poison,
* role logic (leader / member / joiner) driving the manoeuvre protocol,
* security hook points: outbound message processors (signing),
  radio receive filters (verification, freshness, trust) and leader-side
  join validators (admission control).

Degradation policy (the availability story of the paper): a member whose
cooperative data goes stale falls back from CACC to radar-only ACC with a
conservative headway; if the *leader* stays silent past a disband timeout
the member abandons the platoon entirely.  Jamming therefore first widens
gaps (efficiency loss) and then disbands the platoon -- "all savings are
lost", as §V-B puts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.events import EventLog
from repro.net.channel import RadioChannel
from repro.net.messages import Beacon, ManeuverMessage, Message, MessageType
from repro.net.radio import Radio
from repro.net.simulator import Simulator
from repro.net.vlc import VlcChannel, VlcEndpoint
from repro.platoon.controllers import (
    AccController,
    Controller,
    ControllerInputs,
    CruiseController,
    make_controller,
)
from repro.platoon.dynamics import LongitudinalState, VehicleDynamics, VehicleParams
from repro.platoon.maneuvers import JoinerLogic, LeaderLogic, MemberLogic
from repro.platoon.platoon import MembershipRegistry, PlatoonRole, PlatoonState
from repro.platoon.sensors import GpsReceiver, RangeSensor, TirePressureSensor
from repro.platoon.world import World

OutboundProcessor = Callable[[Message], Message]


@dataclass
class BeaconRecord:
    """Latest beacon heard from one sender, with local receive time."""

    beacon: Beacon
    received_at: float

    def age(self, now: float) -> float:
        return now - self.received_at


@dataclass
class VehicleConfig:
    """Per-vehicle behavioural parameters."""

    control_period: float = 0.1          # [s]
    beacon_interval: float = 0.1         # 10 Hz CAM rate
    beacon_timeout: float = 0.5          # cooperative data freshness [s]
    disband_timeout: float = 3.0         # leader silence before giving up [s]
    cacc_kind: str = "ploeg"             # "ploeg" or "path"
    fallback_headway: float = 1.4        # ACC headway when degraded [s]
    cruise_speed: float = 27.0           # ~100 km/h
    use_radar_gap: bool = True           # False => trust beacon positions for gap
    degrade_on_stale: bool = True        # False => hold last value (ablation)
    # Reformation policy: after a comm-loss disband, try to rejoin the old
    # platoon once the channel recovers ("all savings are lost ... until
    # the platoon can reform", §V-B).
    rejoin_after_disband: bool = False
    rejoin_cooldown: float = 5.0


class Vehicle:
    """A platoon-capable vehicle."""

    def __init__(self, sim: Simulator, world: World, channel: RadioChannel,
                 vehicle_id: str, events: EventLog,
                 initial: Optional[LongitudinalState] = None,
                 params: Optional[VehicleParams] = None,
                 config: Optional[VehicleConfig] = None,
                 lane: int = 0,
                 vlc_channel: Optional[VlcChannel] = None,
                 dynamics_factory: Optional[Callable[
                     [VehicleParams, LongitudinalState], VehicleDynamics]] = None
                 ) -> None:
        self.sim = sim
        self.world = world
        self.vehicle_id = vehicle_id
        self.events = events
        self.params = params or VehicleParams()
        self.config = config or VehicleConfig()
        self.lane = lane

        # The factory lets the vector kernel hand out pool-backed slots
        # (repro.kernel.pool.KinematicsPool.make_dynamics) behind the same
        # VehicleDynamics API; default is the scalar integrator.
        factory = dynamics_factory or VehicleDynamics
        self.dynamics = factory(self.params, initial or LongitudinalState())
        self.target_speed = self.config.cruise_speed

        # --- sensors -------------------------------------------------------
        self.gps = GpsReceiver(sim, lambda: self.dynamics.position)
        self.radar = RangeSensor(sim)
        self.tpms = TirePressureSensor(sim)
        self.last_radar_gap: Optional[float] = None

        # --- communications --------------------------------------------------
        self.radio = Radio(sim, channel, vehicle_id, lambda: self.dynamics.position)
        pool = getattr(self.dynamics, "pool", None)
        if pool is not None:
            self.radio.pool_slot = (pool, self.dynamics.slot)
        self.radio.on_receive(self._on_message)
        self.vlc: Optional[VlcEndpoint] = None
        if vlc_channel is not None:
            self.vlc = VlcEndpoint(vlc_channel, vehicle_id,
                                   lambda: self.dynamics.position,
                                   lambda: self.lane)
        self.outbound_processors: list[OutboundProcessor] = []

        # --- platooning state -------------------------------------------------
        self.state = PlatoonState()
        self.leader_logic: Optional[LeaderLogic] = None
        self.member_logic = MemberLogic(self)
        self.joiner_logic: Optional[JoinerLogic] = None
        self.beacon_kb: dict[str, BeaconRecord] = {}

        # --- controllers ------------------------------------------------------
        self.cruise_controller: Controller = CruiseController()
        self.acc_controller = AccController()
        self.fallback_controller = AccController(headway=self.config.fallback_headway)
        self.cacc_controller: Controller = make_controller(self.config.cacc_kind)
        self.active_controller_name = self.cruise_controller.name
        self.degraded = False
        self.degraded_ticks = 0
        self.control_ticks = 0
        self.disbanded = False
        self.compromised = False
        self.compromised_by: Optional[str] = None
        # Lazily attached by the malware attack / onboard-hardening defence.
        self.onboard = None
        # Optional override for the position broadcast in beacons; the
        # sensor-fusion defence points this at a dead-reckoned estimate when
        # it decides the GPS is captured.
        self.beacon_position_fn: Optional[Callable[[], float]] = None

        world.add(self)   # also hooks us into the synchronized control loop

        self._beacon_proc = sim.every(self.config.beacon_interval, self.send_beacon,
                                      initial_delay=sim.rng.uniform(
                                          0.0, self.config.beacon_interval) + 1e-4)

    # ------------------------------------------------------------- properties

    @property
    def position(self) -> float:
        return self.dynamics.position

    @property
    def speed(self) -> float:
        return self.dynamics.speed

    @property
    def acceleration(self) -> float:
        return self.dynamics.acceleration

    @property
    def role(self) -> PlatoonRole:
        return self.state.role

    @property
    def is_leader(self) -> bool:
        return self.state.role is PlatoonRole.LEADER

    # ------------------------------------------------------------------ roles

    def make_leader(self, platoon_id: str, max_members: int = 10,
                    max_pending: int = 4) -> LeaderLogic:
        """Turn this vehicle into the leader of a fresh platoon."""
        registry = MembershipRegistry(platoon_id=platoon_id,
                                      leader_id=self.vehicle_id,
                                      max_members=max_members,
                                      max_pending=max_pending)
        self.leader_logic = LeaderLogic(self, registry)
        self.state.role = PlatoonRole.LEADER
        self.state.platoon_id = platoon_id
        self.state.leader_id = self.vehicle_id
        self.state.roster = [self.vehicle_id]
        self.state.joined_at = self.sim.now
        return self.leader_logic

    def become_member(self, platoon_id: str, leader_id: str) -> None:
        self.state.role = PlatoonRole.MEMBER
        self.state.platoon_id = platoon_id
        self.state.leader_id = leader_id
        self.state.joined_at = self.sim.now
        self.disbanded = False

    def promote_to_leader(self, roster: list[str], platoon_suffix: str = "s") -> None:
        """Become leader of a split-off tail platoon."""
        new_id = f"{self.state.platoon_id or 'p'}-{platoon_suffix}"
        registry = MembershipRegistry(platoon_id=new_id, leader_id=self.vehicle_id,
                                      members=list(roster))
        self.leader_logic = LeaderLogic(self, registry)
        self.state.role = PlatoonRole.LEADER
        self.state.platoon_id = new_id
        self.state.leader_id = self.vehicle_id
        self.state.roster = list(roster)
        self.events.record(self.sim.now, "promoted_leader", self.vehicle_id,
                           platoon_id=new_id, roster=list(roster))
        self.leader_logic.broadcast_roster()

    def start_join(self, platoon_id: str, leader_id: str) -> JoinerLogic:
        """Begin the join procedure toward an existing platoon."""
        self.joiner_logic = JoinerLogic(self, platoon_id, leader_id)
        return self.joiner_logic

    def leave_platoon(self, reason: str) -> None:
        was_in = self.state.in_platoon
        old_platoon = self.state.platoon_id
        old_leader = self.state.leader_id
        self.state.reset()
        self.joiner_logic = None
        if was_in:
            if reason in ("comm_loss",):
                self.disbanded = True
                self.events.record(self.sim.now, "platoon_disband", self.vehicle_id,
                                   reason=reason)
                if (self.config.rejoin_after_disband and old_platoon
                        and old_leader and old_leader != self.vehicle_id):
                    self.sim.schedule(self.config.rejoin_cooldown,
                                      self._attempt_rejoin, old_platoon,
                                      old_leader)
            else:
                self.events.record(self.sim.now, "platoon_left", self.vehicle_id,
                                   reason=reason)

    def _attempt_rejoin(self, platoon_id: str, leader_id: str) -> None:
        if self.state.role is not PlatoonRole.FREE:
            return
        if self.joiner_logic is not None and not self.joiner_logic.joined:
            return
        self.events.record(self.sim.now, "rejoin_attempt", self.vehicle_id,
                           platoon_id=platoon_id)
        self.start_join(platoon_id, leader_id)

    def change_lane(self, lane: int, reason: str = "manual") -> None:
        """Move the vehicle to another lane (instantaneous lateral model).

        The longitudinal substrate has no lateral dynamics, so a lane
        change is a discrete event: the lane index flips and the world is
        told so cached lane-partitioned geometry (the vector kernel's
        predecessor map) is invalidated before the next sensor read.
        """
        if lane == self.lane:
            return
        old = self.lane
        self.lane = lane
        self.world.notify_lane_change(self)
        self.events.record(self.sim.now, "lane_change", self.vehicle_id,
                           from_lane=old, to_lane=lane, reason=reason)

    def compromise(self, by: str) -> None:
        """Mark this vehicle as attacker-controlled (malware outcome)."""
        self.compromised = True
        self.compromised_by = by
        self.events.record(self.sim.now, "vehicle_compromised", self.vehicle_id, by=by)

    # -------------------------------------------------------------- messaging

    def send(self, msg: Message) -> bool:
        """Apply outbound security processors, then broadcast."""
        for processor in self.outbound_processors:
            msg = processor(msg)
        sent = self.radio.send(msg)
        if self.vlc is not None and self.vlc.enabled:
            self.vlc.send(msg)
        return sent

    def send_beacon(self) -> None:
        position = (self.beacon_position_fn() if self.beacon_position_fn
                    is not None else self.gps.read())
        beacon = Beacon(sender_id=self.vehicle_id, timestamp=self.sim.now,
                        position=position,
                        speed=self.dynamics.speed,
                        acceleration=self.dynamics.acceleration,
                        lane=self.lane,
                        platoon_id=self.state.platoon_id,
                        platoon_index=self.state.index_of(self.vehicle_id),
                        is_leader=self.is_leader)
        self.send(beacon)

    def _on_message(self, msg: Message) -> None:
        if msg.msg_type is MessageType.BEACON and isinstance(msg, Beacon):
            self.beacon_kb[msg.sender_id] = BeaconRecord(msg, self.sim.now)
            return
        if isinstance(msg, ManeuverMessage):
            if self.joiner_logic is not None and not self.joiner_logic.joined:
                self.joiner_logic.handle(msg)
            if self.is_leader and self.leader_logic is not None:
                self.leader_logic.handle(msg)
            else:
                self.member_logic.handle(msg)

    def fresh_beacon(self, sender_id: Optional[str],
                     max_age: Optional[float] = None) -> Optional[Beacon]:
        """Latest beacon from ``sender_id`` if younger than ``max_age``."""
        if sender_id is None:
            return None
        record = self.beacon_kb.get(sender_id)
        if record is None:
            return None
        limit = self.config.beacon_timeout if max_age is None else max_age
        if record.age(self.sim.now) > limit:
            return None
        return record.beacon

    # ---------------------------------------------------------------- control

    def control_decide(self) -> float:
        """Phase 1 of the synchronized control loop: sense and decide.

        Reads sensors against the frozen world state, runs manoeuvre
        housekeeping and returns the commanded acceleration.  Must not move
        the vehicle -- that happens in :meth:`control_actuate`.
        """
        law, inputs = self.control_plan()
        return law.compute(inputs)

    def control_plan(self) -> tuple[Controller, ControllerInputs]:
        """Phase 1 without evaluating the control law.

        Identical to :meth:`control_decide` -- same sensor reads (and
        hence the same RNG draws), same manoeuvre housekeeping -- but
        returns the chosen ``(law, inputs)`` pair instead of the command.
        The laws are pure, so the vector kernel batches their evaluation
        (:func:`repro.kernel.controllers.evaluate_commands`) after every
        vehicle has planned, with bit-identical results.
        """
        self.control_ticks += 1
        if self.control_ticks % 10 == 0:
            # The driver display polls tyre pressure at ~1 Hz; spoofed TPMS
            # frames surface as warnings here (§V-G).
            self.tpms.read()

        true_gap = self.world.true_gap(self)
        pred = self.world.predecessor_of(self)
        true_rate = (pred.speed - self.speed) if pred is not None else None
        self.last_radar_gap = self.radar.read(true_gap)
        radar_rate = self.radar.read_rate(true_rate)

        if self.leader_logic is not None and self.is_leader:
            self.leader_logic.tick()
        self.member_logic.tick()
        if self.joiner_logic is not None:
            self.joiner_logic.tick()

        return self._plan_command(radar_rate)

    def control_actuate(self, dt: float, command: float) -> None:
        """Phase 2 of the synchronized control loop: move."""
        self.dynamics.step(dt, command)

    def _compute_command(self, radar_rate: Optional[float]) -> float:
        law, inputs = self._plan_command(radar_rate)
        return law.compute(inputs)

    def _plan_command(self, radar_rate: Optional[float]
                      ) -> tuple[Controller, ControllerInputs]:
        role = self.state.role
        if role is PlatoonRole.MEMBER:
            return self._plan_member(radar_rate)
        if role is PlatoonRole.JOINER:
            return self._plan_joiner(radar_rate)
        # FREE / LEADER / LEAVER: cruise toward target speed, but never
        # blindly rear-end a slower vehicle ahead -- use ACC when a radar
        # target exists.
        inputs = ControllerInputs(own_speed=self.speed, own_accel=self.acceleration,
                                  target_speed=self.target_speed,
                                  gap=self.last_radar_gap, gap_rate=radar_rate)
        self.active_controller_name = (self.acc_controller.name
                                       if inputs.gap is not None
                                       else self.cruise_controller.name)
        if inputs.gap is not None and inputs.gap < self.acc_controller.desired_gap(self.speed) * 1.5:
            return self.acc_controller, inputs
        return self.cruise_controller, inputs

    def _plan_member(self, radar_rate: Optional[float]
                     ) -> tuple[Controller, ControllerInputs]:
        state = self.state
        pred_id = state.predecessor_id(self.vehicle_id)
        if pred_id is None and state.leader_id != self.vehicle_id:
            # Roster does not place us yet; fall back to the physical predecessor.
            phys_pred = self.world.predecessor_of(self)
            pred_id = phys_pred.vehicle_id if phys_pred is not None else None
        leader_id = state.leader_id
        pred_beacon = self.fresh_beacon(pred_id)
        leader_beacon = self.fresh_beacon(leader_id)

        leader_record = self.beacon_kb.get(leader_id) if leader_id else None
        if leader_record is not None:
            leader_age = leader_record.age(self.sim.now)
        else:
            # Never heard the leader yet: measure silence from when we joined,
            # so a freshly-formed platoon gets a grace period.
            leader_age = self.sim.now - (self.state.joined_at or 0.0)
        if leader_age > self.config.disband_timeout:
            # Sustained leader silence: the platoon is effectively gone.
            self.leave_platoon(reason="comm_loss")
            return self._plan_command(radar_rate)

        gap = self.last_radar_gap if self.config.use_radar_gap else None
        if gap is None and pred_beacon is not None:
            # Fall back to beacon-claimed positions (what a vehicle without
            # radar -- or with a blinded one -- must do).
            pred_vehicle = self.world.get(pred_id) if pred_id else None
            pred_length = (pred_vehicle.params.length if pred_vehicle is not None
                           else self.params.length)
            gap = pred_beacon.position - pred_length - self.position

        coop_ok = (pred_beacon is not None and leader_beacon is not None
                   and gap is not None)
        if coop_ok or not self.config.degrade_on_stale:
            stale_pred = pred_beacon or (self.beacon_kb[pred_id].beacon
                                         if pred_id in self.beacon_kb else None)
            stale_leader = leader_beacon or (self.beacon_kb[leader_id].beacon
                                             if leader_id in self.beacon_kb else None)
            if stale_pred is not None and stale_leader is not None and gap is not None:
                inputs = ControllerInputs(
                    own_speed=self.speed, own_accel=self.acceleration,
                    target_speed=self.target_speed,
                    gap=gap, gap_rate=radar_rate,
                    predecessor_speed=stale_pred.speed,
                    predecessor_accel=stale_pred.acceleration,
                    leader_speed=stale_leader.speed,
                    leader_accel=stale_leader.acceleration,
                    desired_gap_factor=state.gap_factor)
                self._set_degraded(False)
                self.active_controller_name = self.cacc_controller.name
                return self.cacc_controller, inputs
        # Degraded: radar-only ACC with conservative headway.
        self._set_degraded(True)
        self.active_controller_name = self.fallback_controller.name
        inputs = ControllerInputs(own_speed=self.speed, own_accel=self.acceleration,
                                  target_speed=self.target_speed,
                                  gap=self.last_radar_gap, gap_rate=radar_rate,
                                  desired_gap_factor=state.gap_factor)
        return self.fallback_controller, inputs

    def _plan_joiner(self, radar_rate: Optional[float]
                     ) -> tuple[Controller, ControllerInputs]:
        # Close in on the platoon tail: slightly higher target speed until
        # the radar sees the tail, then ACC tracks it in.
        gap = self.last_radar_gap
        tail_beacon = None
        # The tail we chase is the last roster entry that is not ourselves
        # (a re-joining ex-member may still appear in a stale roster).
        others = [m for m in self.state.roster if m != self.vehicle_id]
        if others:
            tail_beacon = self.fresh_beacon(others[-1], max_age=1.0)
        approach_speed = self.target_speed
        if tail_beacon is not None:
            approach_speed = tail_beacon.speed + (3.0 if (gap is None or gap > 30) else 0.0)
        inputs = ControllerInputs(own_speed=self.speed, own_accel=self.acceleration,
                                  target_speed=approach_speed,
                                  gap=gap, gap_rate=radar_rate)
        self.active_controller_name = self.acc_controller.name
        if gap is not None:
            # Approach with a tighter headway so we get near enough to merge.
            joiner_acc = AccController(headway=0.6, standstill=4.0)
            return joiner_acc, inputs
        return self.cruise_controller, inputs

    def _set_degraded(self, degraded: bool) -> None:
        if degraded:
            self.degraded_ticks += 1
        if degraded != self.degraded:
            self.degraded = degraded
            kind = "controller_degraded" if degraded else "controller_restored"
            self.events.record(self.sim.now, kind, self.vehicle_id)

    # -------------------------------------------------------------- lifecycle

    def shutdown(self) -> None:
        """Remove the vehicle from the simulation (end of scenario)."""
        self._beacon_proc.stop()
        self.radio.shutdown()
        if self.vlc is not None:
            self.vlc.enabled = False
        self.world.remove(self.vehicle_id)

    def __repr__(self) -> str:
        return (f"<Vehicle {self.vehicle_id} x={self.position:.1f} "
                f"v={self.speed:.1f} role={self.state.role.value}>")
