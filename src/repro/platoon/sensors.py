"""On-vehicle sensors: GPS, forward ranging (radar/LiDAR), tyre pressure.

Each sensor exposes the *attack hooks* the paper describes in §V-G:

* :class:`GpsReceiver` -- spoofing overrides the position estimate with an
  adversary-controlled drift (the "stronger signal wins" capture model).
* :class:`RangeSensor` -- blinding (laser/torch on cameras, radar jamming)
  makes the sensor return no target or noise-only junk.
* :class:`TirePressureSensor` -- TPMS spoofing injects false readings that
  raise spurious warnings (the CAN-access stepping stone in [13], [21]).

Sensors draw noise from the simulator RNG so runs stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.simulator import Simulator


class GpsReceiver:
    """GPS position estimator with spoof-capture semantics.

    In normal operation ``read()`` returns truth plus zero-mean noise.  A
    spoofer that "wins" the receiver (see
    :class:`repro.core.attacks.gps_spoofing.GpsSpoofingAttack`) installs an
    offset function; while captured, the receiver reports the adversary's
    chosen position instead, exactly the failure mode of replay-and-
    overpower spoofing described in the paper.
    """

    def __init__(self, sim: Simulator, truth_fn: Callable[[], float],
                 noise_std: float = 1.5) -> None:
        self.sim = sim
        self._truth_fn = truth_fn
        self.noise_std = noise_std
        self._spoof_fn: Optional[Callable[[float, float], float]] = None
        self.spoof_captures = 0

    @property
    def spoofed(self) -> bool:
        return self._spoof_fn is not None

    def capture(self, spoof_fn: Callable[[float, float], float]) -> None:
        """Install a spoofing function ``f(truth, now) -> reported position``."""
        self._spoof_fn = spoof_fn
        self.spoof_captures += 1

    def release(self) -> None:
        self._spoof_fn = None

    def true_position(self) -> float:
        return self._truth_fn()

    def read(self) -> float:
        truth = self._truth_fn()
        if self._spoof_fn is not None:
            return self._spoof_fn(truth, self.sim.now)
        return truth + self.sim.rng.gauss(0.0, self.noise_std)


class RangeSensor:
    """Forward radar/LiDAR measuring the bumper-to-bumper gap.

    ``read(true_gap)`` adds noise; when *blinded* it returns ``None`` (no
    target).  ``max_range`` models sensor limits -- beyond it the sensor
    legitimately sees nothing, which is why CACC degradation to radar-only
    ACC needs the target in range.
    """

    def __init__(self, sim: Simulator, noise_std: float = 0.1,
                 max_range: float = 120.0) -> None:
        self.sim = sim
        self.noise_std = noise_std
        self.max_range = max_range
        self.blinded = False
        self._bias_fn: Optional[Callable[[float, float], float]] = None

    def blind(self) -> None:
        """Simulate laser/torch blinding or radar jamming (§V-G)."""
        self.blinded = True

    def restore(self) -> None:
        self.blinded = False
        self._bias_fn = None

    def inject_bias(self, bias_fn: Callable[[float, float], float]) -> None:
        """Install a spoofing bias ``f(true_gap, now) -> reported gap``."""
        self._bias_fn = bias_fn

    def read(self, true_gap: Optional[float]) -> Optional[float]:
        if self.blinded or true_gap is None:
            return None
        if true_gap > self.max_range or true_gap < 0:
            return None
        if self._bias_fn is not None:
            return max(0.0, self._bias_fn(true_gap, self.sim.now))
        return max(0.0, true_gap + self.sim.rng.gauss(0.0, self.noise_std))

    def read_rate(self, true_rate: Optional[float]) -> Optional[float]:
        """Doppler-derived closing-rate measurement."""
        if self.blinded or true_rate is None:
            return None
        return true_rate + self.sim.rng.gauss(0.0, self.noise_std * 0.5)


@dataclass
class TpmsReading:
    pressure_kpa: float
    warning: bool


class TirePressureSensor:
    """Tyre-pressure monitoring sensor, the classic unauthenticated RF entry
    point cited by the paper ([13], [21]).

    Spoofing injects readings directly; because TPMS frames carry no
    authentication the ECU cannot tell them from real ones.
    """

    LOW_THRESHOLD_KPA = 180.0
    HIGH_THRESHOLD_KPA = 320.0

    def __init__(self, sim: Simulator, nominal_kpa: float = 240.0,
                 noise_std: float = 2.0) -> None:
        self.sim = sim
        self.nominal_kpa = nominal_kpa
        self.noise_std = noise_std
        self._spoofed_value: Optional[float] = None
        self.warnings_raised = 0

    def spoof(self, value_kpa: float) -> None:
        self._spoofed_value = value_kpa

    def clear_spoof(self) -> None:
        self._spoofed_value = None

    @property
    def spoofed(self) -> bool:
        return self._spoofed_value is not None

    def read(self) -> TpmsReading:
        if self._spoofed_value is not None:
            value = self._spoofed_value
        else:
            value = self.nominal_kpa + self.sim.rng.gauss(0.0, self.noise_std)
        warning = value < self.LOW_THRESHOLD_KPA or value > self.HIGH_THRESHOLD_KPA
        if warning:
            self.warnings_raised += 1
        return TpmsReading(pressure_kpa=value, warning=warning)
