"""Longitudinal vehicle dynamics.

A point-mass model with first-order drivetrain lag, the standard substrate
for platoon control studies (and what Plexe uses underneath its CACC
implementations):

.. math::

    \\dot{x} = v, \\qquad \\dot{v} = a, \\qquad
    \\dot{a} = \\frac{u - a}{\\tau}

where ``u`` is the commanded acceleration and ``tau`` the actuation lag.
Acceleration and speed are clamped to physical bounds; speed never goes
negative (no reversing on the motorway).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import lru_cache

from repro.obs import registry as obs


@lru_cache(maxsize=64)
def lag_alpha(dt: float, tau: float) -> float:
    """Exact first-order-lag discretisation factor ``exp(-dt/tau)``.

    Cached because (dt, tau) pairs are config constants: both the scalar
    step and the vectorized kernel pool call this, which is also what
    keeps the two bit-identical -- the factor is computed by exactly one
    implementation.
    """
    return math.exp(-dt / tau)


@dataclass
class VehicleParams:
    """Physical parameters for one vehicle.

    Defaults approximate a passenger car; trucks (the primary platooning
    use case in the paper's introduction) use longer ``length`` and larger
    ``tau``.
    """

    length: float = 4.5           # [m]
    max_accel: float = 2.5        # [m/s^2]
    max_decel: float = 6.0        # [m/s^2] magnitude of the braking limit
    tau: float = 0.3              # drivetrain lag [s]
    max_speed: float = 44.0       # [m/s] ~160 km/h

    @staticmethod
    def truck() -> "VehicleParams":
        return VehicleParams(length=16.0, max_accel=1.2, max_decel=4.0,
                             tau=0.5, max_speed=30.0)


@dataclass
class LongitudinalState:
    """Kinematic state along the road."""

    position: float = 0.0   # front-bumper coordinate [m]
    speed: float = 0.0      # [m/s]
    acceleration: float = 0.0  # realised acceleration [m/s^2]


class VehicleDynamics:
    """Integrates the longitudinal model with semi-implicit Euler steps."""

    def __init__(self, params: VehicleParams, initial: LongitudinalState) -> None:
        self.params = params
        self.state = initial
        self._last_jerk = 0.0

    @property
    def position(self) -> float:
        return self.state.position

    @property
    def speed(self) -> float:
        return self.state.speed

    @property
    def acceleration(self) -> float:
        return self.state.acceleration

    @property
    def last_jerk(self) -> float:
        """Jerk realised over the last step; comfort metric input."""
        return self._last_jerk

    def clamp_command(self, u: float) -> float:
        return max(-self.params.max_decel, min(self.params.max_accel, u))

    def step(self, dt: float, u: float) -> LongitudinalState:
        """Advance the model by ``dt`` seconds under command ``u``.

        The command is clamped to actuator bounds, then tracked through the
        first-order lag.  Speed is clamped to ``[0, max_speed]``; when the
        vehicle is stopped, negative accelerations are zeroed so it does
        not reverse.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        obs.inc("dynamics.steps")
        t0 = time.perf_counter() if obs.profiling_enabled() else None
        p = self.params
        s = self.state
        u = self.clamp_command(u)

        # first-order actuation lag (exact discretisation)
        alpha = lag_alpha(dt, p.tau)
        new_accel = u + (s.acceleration - u) * alpha
        new_accel = max(-p.max_decel, min(p.max_accel, new_accel))

        new_speed = s.speed + new_accel * dt
        if new_speed < 0.0:
            new_speed = 0.0
            new_accel = max(new_accel, 0.0) if s.speed <= 0 else new_accel
        if new_speed > p.max_speed:
            new_speed = p.max_speed
            new_accel = min(new_accel, 0.0) if s.speed >= p.max_speed else new_accel

        avg_speed = 0.5 * (s.speed + new_speed)
        new_position = s.position + avg_speed * dt

        self._last_jerk = (new_accel - s.acceleration) / dt
        self.state = LongitudinalState(new_position, new_speed, new_accel)
        if t0 is not None:
            obs.observe("dynamics.step", time.perf_counter() - t0)
        return self.state
