"""Message-driven join / leave / split manoeuvre protocol.

This module implements the coordination logic the paper's *fake manoeuvre*
attacks (§V-A.3) target: entrance gaps that stay open for nothing, forged
leave/split commands that fragment the platoon, and the join queue a DoS
flood exhausts (§V-D).

The protocol (deliberately close to the Plexe/ENSEMBLE style):

Join (at the tail, or mid-platoon after a gap-open)::

    joiner                     leader                    member[k]
      | -- JOIN_REQUEST ------> |                           |
      |                         | -- GAP_OPEN (optional) -> |
      |                         | <------- GAP_READY ------ |
      | <-- JOIN_ACCEPT ------- |                           |
      |  ...approaches tail...  |                           |
      | -- JOIN_COMPLETE -----> |                           |
      |                         | -- ROSTER (broadcast) --> |

Leave::

    member -- LEAVE_REQUEST --> leader
    member <-- LEAVE_ACCEPT --- leader      (roster re-broadcast)

Split: ``SPLIT_COMMAND(split_index=k)`` makes member *k* the leader of a
new tail platoon.  ``DISSOLVE`` disbands everything.

Merge (a rear platoon joins the platoon ahead, reversing a split)::

    rear leader -- MERGE_REQUEST(roster) --> front leader
    rear leader <-- MERGE_ACCEPT(combined roster) -- front leader
    rear leader -- MERGE_COMMIT --> rear members   (all adopt the front id)

The leader also *prunes* members that stop beaconing (disbanded, failed,
or drove away) so its roster tracks reality; pruned ex-members with the
``rejoin_after_disband`` policy re-enter through the normal join protocol
-- the reformation cycle the paper's §V-B alludes to.

None of these messages carry authentication unless a defence installs it;
that is the paper's point, and the attack suite exploits exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.messages import ManeuverMessage, ManeuverType
from repro.platoon.platoon import MembershipRegistry, PlatoonRole

if TYPE_CHECKING:
    from repro.platoon.vehicle import Vehicle

JoinValidator = Callable[[ManeuverMessage], bool]


class LeaderLogic:
    """Leader-side manoeuvre coordination."""

    def __init__(self, vehicle: "Vehicle", registry: MembershipRegistry) -> None:
        self.vehicle = vehicle
        self.registry = registry
        self.join_validators: list[JoinValidator] = []
        # Pending-join expiry must cover a physical approach: a joiner 80 m
        # back closing at ~3 m/s needs ~25 s before it can declare complete.
        self.join_timeout = 40.0
        # Members silent for this long are pruned from the roster (they
        # disbanded, failed, or left the road); 0 disables pruning.
        self.member_silence_timeout = 6.0
        self._member_added_at: dict[str, float] = {
            m: vehicle.sim.now for m in registry.members}

    # ------------------------------------------------------------- reception

    def handle(self, msg: ManeuverMessage) -> None:
        v = self.vehicle
        if msg.maneuver is ManeuverType.JOIN_REQUEST:
            self._handle_join_request(msg)
        elif msg.maneuver is ManeuverType.MERGE_REQUEST \
                and msg.target_id == v.vehicle_id:
            self._handle_merge_request(msg)
        elif msg.maneuver is ManeuverType.MERGE_ACCEPT \
                and msg.target_id == v.vehicle_id:
            self._handle_merge_accept(msg)
        elif msg.maneuver is ManeuverType.JOIN_COMPLETE and msg.sender_id in self.registry.pending:
            if self.registry.complete_join(msg.sender_id):
                self._member_added_at[msg.sender_id] = v.sim.now
                v.events.record(v.sim.now, "join_completed", v.vehicle_id,
                                joiner=msg.sender_id, size=self.registry.size)
                self.broadcast_roster()
            else:
                v.events.record(v.sim.now, "join_rejected", v.vehicle_id,
                                requester=msg.sender_id, reason="full")
                self._reply(ManeuverType.JOIN_REJECT, msg.sender_id)
        elif msg.maneuver is ManeuverType.LEAVE_REQUEST:
            self._handle_leave_request(msg)
        elif msg.maneuver is ManeuverType.GAP_READY:
            v.events.record(v.sim.now, "gap_ready", v.vehicle_id, member=msg.sender_id)

    def _handle_join_request(self, msg: ManeuverMessage) -> None:
        v = self.vehicle
        v.events.record(v.sim.now, "join_requested", v.vehicle_id,
                        requester=msg.sender_id)
        for validator in self.join_validators:
            if not validator(msg):
                v.events.record(v.sim.now, "join_rejected", v.vehicle_id,
                                requester=msg.sender_id, reason="validator")
                self._reply(ManeuverType.JOIN_REJECT, msg.sender_id)
                return
        if self.registry.is_full:
            self.registry.rejected_full += 1
            v.events.record(v.sim.now, "join_rejected", v.vehicle_id,
                            requester=msg.sender_id, reason="full")
            self._reply(ManeuverType.JOIN_REJECT, msg.sender_id)
            return
        if not self.registry.queue_join(msg.sender_id, v.sim.now):
            # Queue exhausted: request silently dropped.  This is the
            # per-platoon DoS effect -- legitimate joiners get no answer.
            v.events.record(v.sim.now, "join_dropped_queue_full", v.vehicle_id,
                            requester=msg.sender_id)
            return
        v.events.record(v.sim.now, "join_accepted", v.vehicle_id,
                        requester=msg.sender_id)
        accept = self._make(ManeuverType.JOIN_ACCEPT, target_id=msg.sender_id)
        # Fill the payload *before* sending: security processors sign the
        # message on the way out, so any later mutation would break the tag.
        accept.payload["roster"] = list(self.registry.members)
        v.send(accept)

    def _handle_leave_request(self, msg: ManeuverMessage) -> None:
        v = self.vehicle
        if msg.sender_id not in self.registry.members:
            return
        self.registry.remove_member(msg.sender_id)
        v.events.record(v.sim.now, "leave_accepted", v.vehicle_id,
                        member=msg.sender_id, size=self.registry.size)
        self._reply(ManeuverType.LEAVE_ACCEPT, msg.sender_id)
        self.broadcast_roster()

    def _handle_merge_request(self, msg: ManeuverMessage) -> None:
        """Front-leader side of a platoon merge: absorb the rear platoon."""
        v = self.vehicle
        rear_roster = [vid for vid in msg.payload.get("roster", [])
                       if vid not in self.registry.members]
        if not rear_roster:
            return
        if self.registry.size + len(rear_roster) > self.registry.max_members:
            self._reply(ManeuverType.MERGE_REJECT, msg.sender_id)
            v.events.record(v.sim.now, "merge_rejected", v.vehicle_id,
                            rear_leader=msg.sender_id, reason="capacity")
            return
        self.registry.members.extend(rear_roster)
        for member_id in rear_roster:
            self._member_added_at[member_id] = v.sim.now
        v.events.record(v.sim.now, "merge_accepted", v.vehicle_id,
                        rear_leader=msg.sender_id, absorbed=rear_roster)
        accept = self._make(ManeuverType.MERGE_ACCEPT, target_id=msg.sender_id)
        accept.payload["roster"] = list(self.registry.members)
        v.send(accept)
        self.broadcast_roster()

    def _handle_merge_accept(self, msg: ManeuverMessage) -> None:
        """Rear-leader side: commit the platoon over to the front leader."""
        v = self.vehicle
        combined = list(msg.payload.get("roster", []))
        commit = ManeuverMessage(sender_id=v.vehicle_id, timestamp=v.sim.now,
                                 maneuver=ManeuverType.MERGE_COMMIT,
                                 platoon_id=self.registry.platoon_id)
        commit.payload["new_platoon_id"] = msg.platoon_id
        commit.payload["new_leader_id"] = msg.sender_id
        commit.payload["roster"] = combined
        v.send(commit)
        v.events.record(v.sim.now, "merge_committed", v.vehicle_id,
                        into=msg.platoon_id)
        # Demote ourselves to member of the front platoon.
        v.leader_logic = None
        v.become_member(msg.platoon_id, msg.sender_id)
        v.state.roster = combined

    # -------------------------------------------------------------- commands

    def broadcast_roster(self) -> None:
        v = self.vehicle
        # Order members by their last claimed position (front to back) so
        # roster order matches road order even after out-of-order rejoins.
        members = list(self.registry.members)
        followers = [m for m in members if m != self.registry.leader_id]

        def claimed_position(member_id: str) -> float:
            record = v.beacon_kb.get(member_id)
            if record is None:
                return float("-inf")   # unheard members sort to the tail
            return record.beacon.position

        followers.sort(key=claimed_position, reverse=True)
        ordered = [self.registry.leader_id] + followers
        self.registry.members = ordered
        msg = self._make(ManeuverType.ROSTER)
        msg.payload["roster"] = list(ordered)
        v.send(msg)
        v.state.roster = list(ordered)
        v.events.record(v.sim.now, "roster_update", v.vehicle_id,
                        roster=list(ordered))

    def request_merge(self, front_leader_id: str) -> None:
        """Ask the platoon ahead to absorb this platoon (rear-leader side)."""
        msg = self._make(ManeuverType.MERGE_REQUEST, target_id=front_leader_id)
        msg.payload["roster"] = list(self.registry.members)
        self.vehicle.send(msg)
        self.vehicle.events.record(self.vehicle.sim.now, "merge_requested",
                                   self.vehicle.vehicle_id,
                                   front_leader=front_leader_id)

    def request_gap_open(self, member_id: str, gap_factor: float = 2.5) -> None:
        msg = self._make(ManeuverType.GAP_OPEN, target_id=member_id)
        msg.gap_size = gap_factor
        self.vehicle.send(msg)

    def request_gap_close(self, member_id: str) -> None:
        self.vehicle.send(self._make(ManeuverType.GAP_CLOSE, target_id=member_id))

    def command_split(self, split_index: int) -> None:
        msg = self._make(ManeuverType.SPLIT_COMMAND)
        msg.split_index = split_index
        msg.payload["roster"] = list(self.registry.members)
        self.vehicle.send(msg)
        # The leader keeps only the front part.
        tail = self.registry.members[split_index:]
        self.registry.members = self.registry.members[:split_index]
        self.vehicle.events.record(self.vehicle.sim.now, "split_commanded",
                                   self.vehicle.vehicle_id, tail=tail)
        self.broadcast_roster()

    def dissolve(self) -> None:
        self.vehicle.send(self._make(ManeuverType.DISSOLVE))
        self.vehicle.events.record(self.vehicle.sim.now, "dissolve_commanded",
                                   self.vehicle.vehicle_id)
        self.registry.members = [self.registry.leader_id]

    def command_speed(self, speed: float) -> None:
        msg = self._make(ManeuverType.SPEED_COMMAND)
        msg.speed = speed
        self.vehicle.send(msg)
        self.vehicle.target_speed = speed

    # ------------------------------------------------------------------ tick

    def tick(self) -> None:
        expired = self.registry.expire_pending(self.vehicle.sim.now, self.join_timeout)
        for requester in expired:
            self.vehicle.events.record(self.vehicle.sim.now, "join_expired",
                                       self.vehicle.vehicle_id, requester=requester)
        self._prune_silent_members()

    def _prune_silent_members(self) -> None:
        """Drop roster members the leader has not heard from in a while.

        A member that disbanded, crashed or drove away stops beaconing;
        without pruning the leader's view of the platoon diverges from
        reality forever (and its capacity stays consumed)."""
        if self.member_silence_timeout <= 0:
            return
        v = self.vehicle
        now = v.sim.now
        pruned = []
        for member_id in list(self.registry.members):
            if member_id == self.registry.leader_id:
                continue
            record = v.beacon_kb.get(member_id)
            last_heard = record.received_at if record is not None else \
                self._member_added_at.get(member_id, now)
            if now - last_heard > self.member_silence_timeout:
                self.registry.remove_member(member_id)
                self._member_added_at.pop(member_id, None)
                pruned.append(member_id)
        if pruned:
            v.events.record(now, "members_pruned", v.vehicle_id,
                            members=pruned)
            self.broadcast_roster()

    # --------------------------------------------------------------- plumbing

    def _make(self, kind: ManeuverType, target_id: Optional[str] = None) -> ManeuverMessage:
        v = self.vehicle
        return ManeuverMessage(sender_id=v.vehicle_id, timestamp=v.sim.now,
                               maneuver=kind, platoon_id=self.registry.platoon_id,
                               target_id=target_id)

    def _reply(self, kind: ManeuverType, target_id: str) -> ManeuverMessage:
        msg = self._make(kind, target_id=target_id)
        self.vehicle.send(msg)
        return msg


class MemberLogic:
    """Member-side manoeuvre handling (also runs while JOINER/LEAVER)."""

    def __init__(self, vehicle: "Vehicle") -> None:
        self.vehicle = vehicle
        self.gap_open_timeout = 20.0   # close an unused entrance gap after this

    def handle(self, msg: ManeuverMessage) -> None:
        v = self.vehicle
        state = v.state
        # Only obey manoeuvre traffic for our own platoon once joined.
        if state.platoon_id is not None and msg.platoon_id not in (None, state.platoon_id):
            return
        kind = msg.maneuver
        if kind is ManeuverType.GAP_OPEN and msg.target_id == v.vehicle_id:
            factor = msg.gap_size if msg.gap_size and msg.gap_size > 1.0 else 2.5
            state.gap_factor = factor
            state.gap_open_since = v.sim.now
            v.events.record(v.sim.now, "gap_open", v.vehicle_id, factor=factor,
                            commanded_by=msg.sender_id)
            reply = ManeuverMessage(sender_id=v.vehicle_id, timestamp=v.sim.now,
                                    maneuver=ManeuverType.GAP_READY,
                                    platoon_id=state.platoon_id,
                                    target_id=msg.sender_id)
            v.send(reply)
        elif kind is ManeuverType.GAP_CLOSE and msg.target_id == v.vehicle_id:
            self._close_gap(reason="commanded")
        elif kind is ManeuverType.ROSTER:
            if msg.sender_id == state.leader_id or state.leader_id is None:
                roster = list(msg.payload.get("roster", []))
                if roster:
                    state.roster = roster
                    if v.vehicle_id not in roster and state.role is PlatoonRole.MEMBER:
                        # We have been dropped from the platoon.
                        v.leave_platoon(reason="roster_removed")
        elif kind is ManeuverType.SPLIT_COMMAND:
            self._handle_split(msg)
        elif kind is ManeuverType.DISSOLVE:
            if state.in_platoon and msg.sender_id == state.leader_id:
                v.leave_platoon(reason="dissolve")
        elif kind is ManeuverType.LEAVE_ACCEPT and msg.target_id == v.vehicle_id:
            if state.role is PlatoonRole.MEMBER:
                v.events.record(v.sim.now, "leave_completed", v.vehicle_id)
                v.leave_platoon(reason="left")
        elif kind is ManeuverType.SPEED_COMMAND:
            if msg.speed is not None and msg.sender_id == state.leader_id:
                v.target_speed = msg.speed
                v.events.record(v.sim.now, "speed_command", v.vehicle_id,
                                speed=msg.speed)
        elif kind is ManeuverType.MERGE_COMMIT:
            if state.in_platoon and msg.sender_id == state.leader_id:
                new_platoon = msg.payload.get("new_platoon_id")
                new_leader = msg.payload.get("new_leader_id")
                if new_platoon and new_leader:
                    v.become_member(new_platoon, new_leader)
                    v.state.roster = list(msg.payload.get("roster", []))
                    v.events.record(v.sim.now, "merge_followed", v.vehicle_id,
                                    into=new_platoon)

    def _handle_split(self, msg: ManeuverMessage) -> None:
        v = self.vehicle
        state = v.state
        if not state.in_platoon or msg.split_index is None:
            return
        roster = list(msg.payload.get("roster", state.roster))
        my_index = roster.index(v.vehicle_id) if v.vehicle_id in roster else None
        if my_index is None:
            return
        split = msg.split_index
        if not (0 < split < len(roster)):
            return
        if my_index < split:
            # Front part: roster shrinks, nothing else changes for us.
            state.roster = roster[:split]
            return
        tail = roster[split:]
        new_leader = tail[0]
        v.events.record(v.sim.now, "split_executed", v.vehicle_id,
                        new_leader=new_leader, commanded_by=msg.sender_id)
        if v.vehicle_id == new_leader:
            # Suffix with the new leader's id so repeated splits yield
            # distinct platoon identities (fragment counting relies on it).
            v.promote_to_leader(tail, platoon_suffix=new_leader)
        else:
            state.roster = tail
            state.leader_id = new_leader
            state.platoon_id = f"{state.platoon_id or 'p'}-{new_leader}"

    def _close_gap(self, reason: str) -> None:
        v = self.vehicle
        if v.state.gap_factor != 1.0:
            v.state.gap_factor = 1.0
            v.state.gap_open_since = None
            v.events.record(v.sim.now, "gap_closed", v.vehicle_id, reason=reason)

    def tick(self) -> None:
        v = self.vehicle
        since = v.state.gap_open_since
        if since is not None and v.sim.now - since > self.gap_open_timeout:
            v.events.record(v.sim.now, "gap_timeout", v.vehicle_id,
                            open_for=v.sim.now - since)
            self._close_gap(reason="timeout")


class JoinerLogic:
    """Free-vehicle logic for joining a platoon (the legitimate joiner the
    DoS experiments measure)."""

    def __init__(self, vehicle: "Vehicle", platoon_id: str, leader_id: str,
                 retry_interval: float = 3.0) -> None:
        self.vehicle = vehicle
        self.platoon_id = platoon_id
        self.leader_id = leader_id
        self.retry_interval = retry_interval
        self.requested_at: Optional[float] = None
        self.accepted_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.complete_sent_at: Optional[float] = None
        self.attempts = 0
        # Send JOIN_COMPLETE once the radar tracks the tail at moderate
        # range; the member CACC then closes the remaining distance.  (The
        # ACC approach law cannot exceed its target speed, so demanding a
        # tighter gap than the ACC equilibrium would stall the join.)
        self.join_complete_gap = 30.0

    @property
    def joined(self) -> bool:
        return self.completed_at is not None

    def handle(self, msg: ManeuverMessage) -> None:
        v = self.vehicle
        if msg.maneuver is ManeuverType.JOIN_ACCEPT and msg.target_id == v.vehicle_id:
            if self.accepted_at is None:
                self.accepted_at = v.sim.now
                v.state.role = PlatoonRole.JOINER
                v.state.platoon_id = self.platoon_id
                v.state.leader_id = self.leader_id
                v.state.roster = list(msg.payload.get("roster", []))
                v.events.record(v.sim.now, "joiner_accepted", v.vehicle_id)
        elif msg.maneuver is ManeuverType.JOIN_REJECT and msg.target_id == v.vehicle_id:
            v.events.record(v.sim.now, "joiner_rejected", v.vehicle_id)

    def _send_complete(self) -> None:
        v = self.vehicle
        self.complete_sent_at = v.sim.now
        done = ManeuverMessage(sender_id=v.vehicle_id, timestamp=v.sim.now,
                               maneuver=ManeuverType.JOIN_COMPLETE,
                               platoon_id=self.platoon_id,
                               target_id=self.leader_id)
        v.send(done)

    def tick(self) -> None:
        v = self.vehicle
        if self.joined:
            # JOIN_COMPLETE rides the same lossy channel as everything
            # else; keep resending until the leader's roster broadcast
            # confirms membership (the leader ignores duplicates once the
            # join is registered).
            confirmed = v.vehicle_id in (v.state.roster or ())
            if (not confirmed and self.complete_sent_at is not None
                    and v.sim.now - self.complete_sent_at
                    >= self.retry_interval):
                self._send_complete()
            return
        if self.accepted_at is None:
            # Keep (re)requesting until somebody answers.
            if (self.requested_at is None
                    or v.sim.now - self.requested_at >= self.retry_interval):
                self.requested_at = v.sim.now
                self.attempts += 1
                req = ManeuverMessage(sender_id=v.vehicle_id, timestamp=v.sim.now,
                                      maneuver=ManeuverType.JOIN_REQUEST,
                                      platoon_id=self.platoon_id,
                                      target_id=self.leader_id)
                v.send(req)
            return
        # Accepted: close in on the tail, then declare completion.
        gap = v.last_radar_gap
        if gap is not None and gap <= self.join_complete_gap:
            self.completed_at = v.sim.now
            self._send_complete()
            v.become_member(self.platoon_id, self.leader_id)
            v.events.record(v.sim.now, "joiner_completed", v.vehicle_id,
                            latency=self.completed_at - (self.requested_at or 0.0))
