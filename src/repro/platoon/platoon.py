"""Platoon roles and communicated membership state.

The key modelling decision (and the paper's core attack surface): platoon
membership is *communicated state*, not physical state.  A vehicle's
:class:`PlatoonState` reflects what it has been told over V2V -- which may
include ghost members (Sybil), stale rosters (replay) or forged splits.
The physical truth lives in :class:`repro.platoon.world.World` and the two
only agree when nobody is attacking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import registry as obs


class PlatoonRole(enum.Enum):
    FREE = "free"        # not platooning; human-driven cruise/ACC
    LEADER = "leader"
    MEMBER = "member"
    JOINER = "joiner"    # approaching the platoon, join accepted but not complete
    LEAVER = "leaver"    # leave accepted, manoeuvring out


@dataclass
class PlatoonState:
    """One vehicle's view of its platoon."""

    role: PlatoonRole = PlatoonRole.FREE
    platoon_id: Optional[str] = None
    leader_id: Optional[str] = None
    # Ordered roster, leader first, as last communicated by the leader.
    roster: list[str] = field(default_factory=list)
    gap_factor: float = 1.0          # >1 while opening a gap for a joiner
    gap_open_since: Optional[float] = None
    joined_at: Optional[float] = None

    @property
    def in_platoon(self) -> bool:
        return self.role in (PlatoonRole.LEADER, PlatoonRole.MEMBER)

    def index_of(self, vehicle_id: str) -> Optional[int]:
        try:
            return self.roster.index(vehicle_id)
        except ValueError:
            return None

    def predecessor_id(self, vehicle_id: str) -> Optional[str]:
        """Who the roster says is directly ahead of ``vehicle_id``."""
        idx = self.index_of(vehicle_id)
        if idx is None or idx == 0:
            return None
        return self.roster[idx - 1]

    def reset(self) -> None:
        self.role = PlatoonRole.FREE
        self.platoon_id = None
        self.leader_id = None
        self.roster = []
        self.gap_factor = 1.0
        self.gap_open_since = None
        self.joined_at = None


@dataclass
class PendingJoin:
    """Leader-side bookkeeping for an in-progress join."""

    requester_id: str
    requested_at: float
    accepted_at: Optional[float] = None


@dataclass
class MembershipRegistry:
    """Leader-side authoritative membership list with a join queue.

    ``max_members`` is the platoon size cap the paper's per-platoon DoS
    analysis relies on ("platoons will be limited to a maximum number of
    members"); ``max_pending`` is the join-queue capacity a request flood
    exhausts.
    """

    platoon_id: str
    leader_id: str
    max_members: int = 10
    max_pending: int = 4
    members: list[str] = field(default_factory=list)   # leader first
    pending: dict[str, PendingJoin] = field(default_factory=dict)
    rejected_full: int = 0
    rejected_queue: int = 0

    def __post_init__(self) -> None:
        if not self.members:
            self.members = [self.leader_id]

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def is_full(self) -> bool:
        return self.size >= self.max_members

    def can_queue_join(self) -> bool:
        return len(self.pending) < self.max_pending

    def queue_join(self, requester_id: str, now: float) -> bool:
        if requester_id in self.pending:
            return True  # duplicate request, keep original slot
        if not self.can_queue_join():
            self.rejected_queue += 1
            obs.inc("platoon.joins_rejected_queue")
            return False
        self.pending[requester_id] = PendingJoin(requester_id, now)
        obs.inc("platoon.joins_queued")
        return True

    def complete_join(self, requester_id: str) -> bool:
        if requester_id not in self.pending:
            return False
        del self.pending[requester_id]
        if requester_id in self.members:
            return True
        if self.is_full:
            # Several accepted joins can be in flight at once; capacity is
            # re-checked at completion so pipelined joins cannot overshoot.
            self.rejected_full += 1
            obs.inc("platoon.joins_rejected_full")
            return False
        self.members.append(requester_id)
        obs.inc("platoon.joins_completed")
        return True

    def abandon_join(self, requester_id: str) -> None:
        self.pending.pop(requester_id, None)

    def remove_member(self, vehicle_id: str) -> bool:
        if vehicle_id in self.members and vehicle_id != self.leader_id:
            self.members.remove(vehicle_id)
            return True
        return False

    def expire_pending(self, now: float, timeout: float) -> list[str]:
        expired = [pid for pid, pj in self.pending.items()
                   if now - pj.requested_at > timeout]
        for pid in expired:
            del self.pending[pid]
        return expired
