"""Platooning substrate: vehicle dynamics, controllers, manoeuvres, sensors.

This package is the from-scratch replacement for Plexe/VENTOS [39, 40 in
the paper]: longitudinal vehicle models, ACC and CACC controllers, the
leader/member platoon roles, and the message-driven join / leave / split
manoeuvre protocol that the paper's manoeuvre attacks target.
"""

from repro.platoon.dynamics import LongitudinalState, VehicleDynamics, VehicleParams
from repro.platoon.controllers import (
    AccController,
    ControllerInputs,
    CruiseController,
    PathCaccController,
    PloegCaccController,
)
from repro.platoon.sensors import GpsReceiver, RangeSensor, TirePressureSensor
from repro.platoon.platoon import PlatoonRole, PlatoonState
from repro.platoon.vehicle import Vehicle, VehicleConfig

__all__ = [
    "LongitudinalState",
    "VehicleDynamics",
    "VehicleParams",
    "AccController",
    "ControllerInputs",
    "CruiseController",
    "PathCaccController",
    "PloegCaccController",
    "GpsReceiver",
    "RangeSensor",
    "TirePressureSensor",
    "PlatoonRole",
    "PlatoonState",
    "Vehicle",
    "VehicleConfig",
]
