"""Physical world registry: who is where on the road.

The :class:`World` holds every physical vehicle so that ranging sensors can
find the true predecessor, collision detection can check real gaps, and
attackers placed on the roadside can compute distances.  It deliberately
knows nothing about platoon membership -- that is communicated state, and
keeping the two separate is what lets the attack suite create divergence
between *claimed* and *physical* reality (ghost vehicles, spoofed GPS).
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from repro.kernel.pool import KinematicsPool
    from repro.platoon.vehicle import Vehicle


class World:
    """Registry of physical vehicles on a single directed road.

    The world also owns the **synchronized control loop**: every control
    period it first lets *all* vehicles sense and decide against the frozen
    current state, and only then steps every vehicle's dynamics.  Without
    this two-phase update, vehicles ticking in creation order would measure
    gaps against predecessors that already moved this step -- a systematic
    ``v * dt`` range bias that corrupts every spacing result.

    With a :class:`~repro.kernel.pool.KinematicsPool` attached (vector
    kernel), phase 1 *plans* each command (law + inputs, same per-vehicle
    order, so sensor RNG draws are untouched), the laws are evaluated in
    one batch, and phase 2 steps all pooled vehicles with a single bulk
    array update.  Geometry queries (predecessor maps) are then cached
    between pool versions, since positions only move when the pool steps.
    """

    def __init__(self) -> None:
        self._vehicles: dict[str, "Vehicle"] = {}
        self._control_proc = None
        self.control_period: Optional[float] = None
        self._pool: Optional["KinematicsPool"] = None
        self._membership_version = 0
        self._all_pooled_cache: Optional[tuple[int, bool]] = None
        self._pred_cache: Optional[tuple[tuple[int, int], dict]] = None

    def attach_pool(self, pool: "KinematicsPool") -> None:
        """Switch this world to the vectorized control tick.

        Must be attached before (or while) vehicles whose dynamics live
        in ``pool`` are added; vehicles with non-pooled dynamics still
        work but disable geometry caching.
        """
        self._pool = pool
        self._all_pooled_cache = None
        self._pred_cache = None

    def add(self, vehicle: "Vehicle") -> None:
        if vehicle.vehicle_id in self._vehicles:
            raise ValueError(f"duplicate vehicle id {vehicle.vehicle_id!r}")
        self._vehicles[vehicle.vehicle_id] = vehicle
        self._membership_version += 1
        self._ensure_control_loop(vehicle)

    def _ensure_control_loop(self, vehicle: "Vehicle") -> None:
        if self._control_proc is not None:
            return
        self.control_period = vehicle.config.control_period
        self._control_proc = vehicle.sim.every(
            self.control_period, self._control_tick,
            initial_delay=self.control_period)

    def _control_tick(self) -> None:
        dt = self.control_period
        assert dt is not None
        if self._pool is not None:
            self._control_tick_vector(dt)
            return
        # Phase 1: everyone senses and decides against frozen state.
        decisions: list[tuple["Vehicle", float]] = []
        for vehicle in list(self._vehicles.values()):
            decisions.append((vehicle, vehicle.control_decide()))
        # Phase 2: everyone moves.
        for vehicle, command in decisions:
            if vehicle.vehicle_id in self._vehicles:  # not removed mid-tick
                vehicle.control_actuate(dt, command)

    def _control_tick_vector(self, dt: float) -> None:
        from repro.kernel.controllers import evaluate_commands

        # Phase 1: same per-vehicle order as the scalar tick (sensor RNG
        # draws depend on it), but commands stay unevaluated plans.
        vehicles = list(self._vehicles.values())
        plans = [(vehicle, vehicle.control_plan()) for vehicle in vehicles]
        commands = evaluate_commands([plan for _, plan in plans])
        # Phase 2: pooled vehicles step as one bulk array update; any
        # non-pooled stragglers keep the scalar path.
        pool = self._pool
        slots: list[int] = []
        slot_commands: list[float] = []
        scalar_steps: list[tuple["Vehicle", float]] = []
        for (vehicle, _), command in zip(plans, commands):
            if vehicle.vehicle_id not in self._vehicles:  # removed mid-tick
                continue
            dynamics = vehicle.dynamics
            if getattr(dynamics, "pool", None) is pool:
                slots.append(dynamics.slot)
                slot_commands.append(command)
            else:
                scalar_steps.append((vehicle, command))
        if slots:
            pool.step_slots(dt, slots, slot_commands)
        for vehicle, command in scalar_steps:
            vehicle.control_actuate(dt, command)

    def stop_control_loop(self) -> None:
        if self._control_proc is not None:
            self._control_proc.stop()
            self._control_proc = None

    def remove(self, vehicle_id: str) -> None:
        if self._vehicles.pop(vehicle_id, None) is not None:
            self._membership_version += 1

    def notify_lane_change(self, vehicle: "Vehicle") -> None:
        """Invalidate lane-derived geometry caches after a lane change.

        The cached predecessor map partitions vehicles by lane, so a lane
        change moves a vehicle between partitions without the pool version
        changing.  :meth:`repro.platoon.vehicle.Vehicle.change_lane` calls
        this so the next geometry query rebuilds the map.
        """
        if vehicle.vehicle_id in self._vehicles:
            self._membership_version += 1

    def get(self, vehicle_id: str) -> Optional["Vehicle"]:
        return self._vehicles.get(vehicle_id)

    def vehicles(self) -> list["Vehicle"]:
        return list(self._vehicles.values())

    def __contains__(self, vehicle_id: str) -> bool:
        return vehicle_id in self._vehicles

    def __len__(self) -> int:
        return len(self._vehicles)

    def vehicles_in_lane(self, lane: int) -> list["Vehicle"]:
        return [v for v in self._vehicles.values() if v.lane == lane]

    # ------------------------------------------------------- geometry queries

    def _all_pooled(self) -> bool:
        cached = self._all_pooled_cache
        if cached is not None and cached[0] == self._membership_version:
            return cached[1]
        ok = all(getattr(v.dynamics, "pool", None) is self._pool
                 for v in self._vehicles.values())
        self._all_pooled_cache = (self._membership_version, ok)
        return ok

    def _predecessor_map(self) -> Optional[dict]:
        """Cached ``vehicle_id -> predecessor`` map (vector kernel only).

        Valid while membership and the pool version are unchanged --
        pooled positions only move through the pool, which bumps its
        version on every write.  Any non-pooled vehicle (whose position
        can change without a version bump) disables the cache.  Lane
        changes move a vehicle between lane partitions without touching
        the pool, so :meth:`notify_lane_change` bumps the membership
        version to invalidate this cache (``Vehicle.change_lane`` calls
        it on every lane switch).
        """
        if self._pool is None:
            return None
        key = (self._membership_version, self._pool.version)
        cached = self._pred_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        if not self._all_pooled():
            return None
        by_lane: dict[int, list[tuple[float, int, "Vehicle"]]] = {}
        for order, vehicle in enumerate(self._vehicles.values()):
            by_lane.setdefault(vehicle.lane, []).append(
                (vehicle.position, order, vehicle))
        pred_map: dict[str, Optional["Vehicle"]] = {}
        for entries in by_lane.values():
            # Sorting by (position, insertion order) reproduces the linear
            # scan's tie-break exactly: the predecessor is the earliest-
            # registered vehicle among those at the smallest position
            # strictly ahead.
            entries.sort(key=lambda item: (item[0], item[1]))
            positions = [item[0] for item in entries]
            for i, (position, _, vehicle) in enumerate(entries):
                j = bisect.bisect_right(positions, position)
                pred_map[vehicle.vehicle_id] = (entries[j][2]
                                                if j < len(entries) else None)
        self._pred_cache = (key, pred_map)
        return pred_map

    def predecessor_of(self, vehicle: "Vehicle") -> Optional["Vehicle"]:
        """Nearest vehicle physically ahead in the same lane, or None."""
        pred_map = self._predecessor_map()
        if (pred_map is not None
                and self._vehicles.get(vehicle.vehicle_id) is vehicle):
            return pred_map[vehicle.vehicle_id]
        best: Optional["Vehicle"] = None
        for other in self._vehicles.values():
            if other is vehicle or other.lane != vehicle.lane:
                continue
            if other.position > vehicle.position:
                if best is None or other.position < best.position:
                    best = other
        return best

    def true_gap(self, vehicle: "Vehicle") -> Optional[float]:
        """Bumper-to-bumper distance to the physical predecessor."""
        pred = self.predecessor_of(vehicle)
        if pred is None:
            return None
        return pred.position - pred.params.length - vehicle.position

    def gap_between(self, follower: "Vehicle", leader: "Vehicle") -> float:
        return leader.position - leader.params.length - follower.position

    def collisions(self) -> list[tuple[str, str]]:
        """Pairs (follower, leader) whose bumper gap is non-positive."""
        out: list[tuple[str, str]] = []
        for vehicle in self._vehicles.values():
            pred = self.predecessor_of(vehicle)
            if pred is not None and self.gap_between(vehicle, pred) <= 0.0:
                out.append((vehicle.vehicle_id, pred.vehicle_id))
        return out

    def ordered_by_position(self, lane: Optional[int] = None) -> list["Vehicle"]:
        """Vehicles sorted front (largest position) to back."""
        pool: Iterable["Vehicle"] = self._vehicles.values()
        if lane is not None:
            pool = (v for v in pool if v.lane == lane)
        return sorted(pool, key=lambda v: -v.position)
