"""Physical world registry: who is where on the road.

The :class:`World` holds every physical vehicle so that ranging sensors can
find the true predecessor, collision detection can check real gaps, and
attackers placed on the roadside can compute distances.  It deliberately
knows nothing about platoon membership -- that is communicated state, and
keeping the two separate is what lets the attack suite create divergence
between *claimed* and *physical* reality (ghost vehicles, spoofed GPS).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from repro.platoon.vehicle import Vehicle


class World:
    """Registry of physical vehicles on a single directed road.

    The world also owns the **synchronized control loop**: every control
    period it first lets *all* vehicles sense and decide against the frozen
    current state, and only then steps every vehicle's dynamics.  Without
    this two-phase update, vehicles ticking in creation order would measure
    gaps against predecessors that already moved this step -- a systematic
    ``v * dt`` range bias that corrupts every spacing result.
    """

    def __init__(self) -> None:
        self._vehicles: dict[str, "Vehicle"] = {}
        self._control_proc = None
        self.control_period: Optional[float] = None

    def add(self, vehicle: "Vehicle") -> None:
        if vehicle.vehicle_id in self._vehicles:
            raise ValueError(f"duplicate vehicle id {vehicle.vehicle_id!r}")
        self._vehicles[vehicle.vehicle_id] = vehicle
        self._ensure_control_loop(vehicle)

    def _ensure_control_loop(self, vehicle: "Vehicle") -> None:
        if self._control_proc is not None:
            return
        self.control_period = vehicle.config.control_period
        self._control_proc = vehicle.sim.every(
            self.control_period, self._control_tick,
            initial_delay=self.control_period)

    def _control_tick(self) -> None:
        dt = self.control_period
        assert dt is not None
        # Phase 1: everyone senses and decides against frozen state.
        decisions: list[tuple["Vehicle", float]] = []
        for vehicle in list(self._vehicles.values()):
            decisions.append((vehicle, vehicle.control_decide()))
        # Phase 2: everyone moves.
        for vehicle, command in decisions:
            if vehicle.vehicle_id in self._vehicles:  # not removed mid-tick
                vehicle.control_actuate(dt, command)

    def stop_control_loop(self) -> None:
        if self._control_proc is not None:
            self._control_proc.stop()
            self._control_proc = None

    def remove(self, vehicle_id: str) -> None:
        self._vehicles.pop(vehicle_id, None)

    def get(self, vehicle_id: str) -> Optional["Vehicle"]:
        return self._vehicles.get(vehicle_id)

    def vehicles(self) -> list["Vehicle"]:
        return list(self._vehicles.values())

    def __contains__(self, vehicle_id: str) -> bool:
        return vehicle_id in self._vehicles

    def __len__(self) -> int:
        return len(self._vehicles)

    def vehicles_in_lane(self, lane: int) -> list["Vehicle"]:
        return [v for v in self._vehicles.values() if v.lane == lane]

    def predecessor_of(self, vehicle: "Vehicle") -> Optional["Vehicle"]:
        """Nearest vehicle physically ahead in the same lane, or None."""
        best: Optional["Vehicle"] = None
        for other in self._vehicles.values():
            if other is vehicle or other.lane != vehicle.lane:
                continue
            if other.position > vehicle.position:
                if best is None or other.position < best.position:
                    best = other
        return best

    def true_gap(self, vehicle: "Vehicle") -> Optional[float]:
        """Bumper-to-bumper distance to the physical predecessor."""
        pred = self.predecessor_of(vehicle)
        if pred is None:
            return None
        return pred.position - pred.params.length - vehicle.position

    def gap_between(self, follower: "Vehicle", leader: "Vehicle") -> float:
        return leader.position - leader.params.length - follower.position

    def collisions(self) -> list[tuple[str, str]]:
        """Pairs (follower, leader) whose bumper gap is non-positive."""
        out: list[tuple[str, str]] = []
        for vehicle in self._vehicles.values():
            pred = self.predecessor_of(vehicle)
            if pred is not None and self.gap_between(vehicle, pred) <= 0.0:
                out.append((vehicle.vehicle_id, pred.vehicle_id))
        return out

    def ordered_by_position(self, lane: Optional[int] = None) -> list["Vehicle"]:
        """Vehicles sorted front (largest position) to back."""
        pool: Iterable["Vehicle"] = self._vehicles.values()
        if lane is not None:
            pool = (v for v in pool if v.lane == lane)
        return sorted(pool, key=lambda v: -v.position)
