"""Longitudinal controllers: cruise, ACC and two CACC laws.

These mirror the controller set Plexe ships (the simulation platform the
paper cites for platoon validation):

* :class:`CruiseController` -- plain speed tracking, used by free-driving
  vehicles and platoon leaders.
* :class:`AccController` -- radar-only adaptive cruise control with a
  constant time-gap policy.  This is the *fallback* controller members
  degrade to when V2V beacons are lost (e.g. under jamming), with a larger
  headway because radar alone is less capable.
* :class:`PathCaccController` -- the PATH constant-spacing CACC
  (Rajamani's formulation, the Plexe default) consuming predecessor and
  leader acceleration from beacons.
* :class:`PloegCaccController` -- a time-headway CACC with predecessor
  acceleration feed-forward (Ploeg et al. style).

All controllers consume a :class:`ControllerInputs` snapshot assembled by
the vehicle from its sensors and its beacon knowledge base -- which is the
attack surface: falsified beacons flow straight into these control laws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol


@dataclass
class ControllerInputs:
    """Snapshot of everything a longitudinal controller may use.

    ``None`` fields mean "information unavailable" (no radar return, no
    recent beacon); controllers must tolerate missing cooperative data.
    """

    own_speed: float
    own_accel: float
    target_speed: float                    # cruise set-point
    gap: Optional[float] = None            # bumper-to-bumper distance to predecessor [m]
    gap_rate: Optional[float] = None       # d(gap)/dt, from radar doppler [m/s]
    predecessor_speed: Optional[float] = None   # from beacons
    predecessor_accel: Optional[float] = None   # from beacons
    leader_speed: Optional[float] = None        # from beacons
    leader_accel: Optional[float] = None        # from beacons
    desired_gap_factor: float = 1.0        # manoeuvre gap multiplier (gap opening)


class Controller(Protocol):
    """A longitudinal control law."""

    name: str

    def compute(self, inputs: ControllerInputs) -> float:
        """Return a commanded acceleration [m/s^2]."""
        ...

    def desired_gap(self, speed: float) -> float:
        """Nominal bumper-to-bumper gap at a given speed [m]."""
        ...


@dataclass
class CruiseController:
    """Proportional speed tracking for free driving and platoon leaders."""

    k_speed: float = 0.8
    name: str = "CC"

    def compute(self, inputs: ControllerInputs) -> float:
        return self.k_speed * (inputs.target_speed - inputs.own_speed)

    def desired_gap(self, speed: float) -> float:
        # Free driving keeps a conventional 2-second gap.
        return 2.0 + 2.0 * speed


@dataclass
class AccController:
    """Constant time-gap ACC using only ranging-sensor data.

    ``u = k1 * (gap - s_des) + k2 * gap_rate`` with
    ``s_des = standstill + headway * v``.  Falls back to cruise control
    when no target is in radar range.
    """

    headway: float = 1.2          # [s]
    standstill: float = 2.0       # [m]
    k_gap: float = 0.23
    k_rate: float = 0.7
    k_speed: float = 0.8
    name: str = "ACC"

    def desired_gap(self, speed: float) -> float:
        return self.standstill + self.headway * speed

    def compute(self, inputs: ControllerInputs) -> float:
        if inputs.gap is None:
            return self.k_speed * (inputs.target_speed - inputs.own_speed)
        desired = self.desired_gap(inputs.own_speed) * inputs.desired_gap_factor
        gap_error = inputs.gap - desired
        gap_rate = inputs.gap_rate
        if gap_rate is None:
            if inputs.predecessor_speed is not None:
                gap_rate = inputs.predecessor_speed - inputs.own_speed
            else:
                gap_rate = 0.0
        u_gap = self.k_gap * gap_error + self.k_rate * gap_rate
        # Classic ACC arbitration: never exceed the cruise set-point chasing
        # a faster predecessor (speed-limited gap closing).
        u_cruise = self.k_speed * (inputs.target_speed - inputs.own_speed)
        return min(u_gap, u_cruise)


@dataclass
class PathCaccController:
    """PATH constant-spacing CACC (Rajamani), the Plexe default.

    .. math::

        u_i = (1 - C_1) a_{i-1} + C_1 a_0
              - (2\\xi - C_1(\\xi + \\sqrt{\\xi^2 - 1})) \\omega_n \\dot e_i
              - (\\xi + \\sqrt{\\xi^2 - 1}) \\omega_n C_1 (v_i - v_0)
              - \\omega_n^2 e_i

    where ``e_i = gap_des - gap`` sign-adjusted below so positive error
    means "too close".  Requires both predecessor and leader data; the
    vehicle degrades to ACC when either is stale.
    """

    spacing: float = 5.0          # constant bumper-to-bumper gap [m]
    c1: float = 0.5
    xi: float = 1.0
    omega_n: float = 0.2
    name: str = "CACC-PATH"

    def desired_gap(self, speed: float) -> float:  # constant-spacing policy
        return self.spacing

    def compute(self, inputs: ControllerInputs) -> float:
        if (inputs.gap is None or inputs.predecessor_speed is None
                or inputs.predecessor_accel is None or inputs.leader_speed is None
                or inputs.leader_accel is None):
            raise ValueError("PATH CACC requires full cooperative inputs; "
                             "the vehicle should have degraded to ACC")
        desired = self.spacing * inputs.desired_gap_factor
        # e > 0 means the gap is larger than desired (we are too far back).
        e = inputs.gap - desired
        e_dot = (inputs.gap_rate if inputs.gap_rate is not None
                 else inputs.predecessor_speed - inputs.own_speed)
        root = math.sqrt(max(self.xi ** 2 - 1.0, 0.0))
        term_pred = (1.0 - self.c1) * inputs.predecessor_accel
        term_lead = self.c1 * inputs.leader_accel
        k_edot = (2.0 * self.xi - self.c1 * (self.xi + root)) * self.omega_n
        k_vlead = (self.xi + root) * self.omega_n * self.c1
        u = (term_pred + term_lead
             + k_edot * e_dot
             - k_vlead * (inputs.own_speed - inputs.leader_speed)
             + self.omega_n ** 2 * e)
        return u


@dataclass
class PloegCaccController:
    """Time-headway CACC with predecessor acceleration feed-forward.

    A practically-tuned approximation of Ploeg's :math:`H_\\infty` design:
    PD control on the headway-policy spacing error plus feed-forward of the
    predecessor's (beacon-reported) acceleration.
    """

    headway: float = 0.5          # [s] -- the whole point of CACC: sub-second gaps
    standstill: float = 2.0       # [m]
    k_p: float = 0.45
    k_d: float = 1.0
    name: str = "CACC-PLOEG"

    def desired_gap(self, speed: float) -> float:
        return self.standstill + self.headway * speed

    def compute(self, inputs: ControllerInputs) -> float:
        if (inputs.gap is None or inputs.predecessor_speed is None
                or inputs.predecessor_accel is None):
            raise ValueError("Ploeg CACC requires predecessor inputs; "
                             "the vehicle should have degraded to ACC")
        desired = self.desired_gap(inputs.own_speed) * inputs.desired_gap_factor
        e = inputs.gap - desired
        e_dot = (inputs.gap_rate if inputs.gap_rate is not None
                 else inputs.predecessor_speed - inputs.own_speed)
        return inputs.predecessor_accel + self.k_p * e + self.k_d * e_dot


def make_controller(kind: str, **overrides) -> Controller:
    """Factory used by scenario configs ("acc", "path", "ploeg", "cruise")."""
    registry = {
        "cruise": CruiseController,
        "acc": AccController,
        "path": PathCaccController,
        "ploeg": PloegCaccController,
    }
    key = kind.lower()
    if key not in registry:
        raise ValueError(f"unknown controller kind {kind!r}; "
                         f"expected one of {sorted(registry)}")
    return registry[key](**overrides)
