"""Roadside infrastructure: RSUs and the trusted authority.

Implements the §VI-A.2 defence building block: RSUs act as intermediaries
between platooning vehicles and a trusted authority -- distributing group
keys to authorised vehicles, pushing revocation lists, and monitoring
behaviour in their coverage area.  Rogue RSUs (the module's attack hook)
present certificates the TA never signed, which is how the "identify rogue
RSUs" open challenge is exercised.
"""

from repro.infra.authority import TrustedAuthority
from repro.infra.rsu import RoadsideUnit

__all__ = ["TrustedAuthority", "RoadsideUnit"]
