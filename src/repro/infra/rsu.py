"""Roadside units: key distribution relays and coverage monitors.

An RSU is a static node on the channel.  Its duties follow §VI-A.2:

* answer vehicles' key requests by relaying TA-wrapped group keys
  (only inside its coverage radius -- the "low RSU density" open challenge
  shows up as vehicles outside coverage simply not getting keys),
* periodically push the current revocation list,
* observe beacons in coverage for behaviour monitoring (it feeds a trust
  manager that other defences can query).

A **rogue RSU** is constructed with ``rogue=True``: it has no TA
registration, presents a self-made certificate, and hands out attacker
keys.  Vehicles that verify RSU certificates against the TA reject it;
vehicles that don't are captured -- exactly the "identification of rogue
RSUs" challenge in Table III.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.events import EventLog
from repro.net.channel import RadioChannel
from repro.net.messages import KeyDistributionMessage, Message, MessageType
from repro.net.radio import Radio
from repro.net.simulator import Simulator
from repro.infra.authority import TrustedAuthority, WrappedKey
from repro.security.crypto import generate_keypair, sign
from repro.security.pki import Certificate
from repro.security.trust import TrustManager


class RoadsideUnit:
    """A static infrastructure node relaying TA services to vehicles."""

    def __init__(self, sim: Simulator, channel: RadioChannel, rsu_id: str,
                 position: float, authority: Optional[TrustedAuthority],
                 events: EventLog,
                 coverage_m: float = 400.0,
                 crl_push_interval: float = 5.0,
                 rogue: bool = False) -> None:
        self.sim = sim
        self.rsu_id = rsu_id
        self.position = position
        self.authority = authority
        self.events = events
        self.coverage_m = coverage_m
        self.rogue = rogue
        self.failed = False
        self.trust = TrustManager(rsu_id)
        self.keys_issued = 0
        self.requests_refused = 0

        self.radio = Radio(sim, channel, rsu_id, lambda: self.position)
        self.radio.on_receive(self._on_message)

        if rogue or authority is None:
            # Self-signed identity the TA never blessed.
            rng = random.Random(hash(rsu_id) & 0xFFFF)
            self._keypair = generate_keypair(rng, bits=512)
            self._certificate = self._self_signed_cert()
        else:
            self._keypair, self._certificate = authority.register_rsu(
                rsu_id, now=sim.now)

        if crl_push_interval > 0 and authority is not None and not rogue:
            sim.every(crl_push_interval, self.push_crl,
                      initial_delay=crl_push_interval / 2)

    def _self_signed_cert(self) -> Certificate:
        cert = Certificate(subject_id=self.rsu_id, public_key=self._keypair.public,
                           issuer_id=self.rsu_id, serial=0,
                           valid_from=0.0, valid_until=1e9)
        signature = sign(self._keypair, cert.signed_bytes())
        return Certificate(**{**cert.__dict__, "signature": signature})

    @property
    def certificate(self) -> Certificate:
        return self._certificate

    def in_coverage(self, position: float) -> bool:
        return abs(position - self.position) <= self.coverage_m

    def fail(self) -> None:
        """Knock the RSU out (damage/failure per the open challenge)."""
        self.failed = True
        self.radio.disable()

    # ---------------------------------------------------------------- traffic

    def _on_message(self, msg: Message) -> None:
        if self.failed:
            return
        if msg.msg_type is MessageType.KEY_DISTRIBUTION and isinstance(
                msg, KeyDistributionMessage):
            if msg.payload.get("request") == "group_key":
                self._serve_key_request(msg)
        elif msg.msg_type is MessageType.BEACON:
            # Behaviour monitoring: seeing regular beacons is (weak) positive
            # evidence; detectors hook deeper checks through the radio tap.
            self.trust.report_positive(msg.sender_id, self.sim.now, weight=0.05)

    def _serve_key_request(self, msg: KeyDistributionMessage) -> None:
        requester = msg.sender_id
        requester_pos = msg.payload.get("position")
        if requester_pos is not None and not self.in_coverage(requester_pos):
            self.requests_refused += 1
            return
        if self.rogue or self.authority is None:
            # Hand out an attacker-chosen key, "signed" by nobody the TA knows.
            reply = KeyDistributionMessage(
                sender_id=self.rsu_id, timestamp=self.sim.now,
                key_id="rogue-key", encrypted_key=b"\x00" * 32,
                recipient_id=requester)
            reply.cert = self._certificate
            self.radio.send(reply)
            self.keys_issued += 1
            self.events.record(self.sim.now, "rogue_key_issued", self.rsu_id,
                               to=requester)
            return
        wrapped: Optional[WrappedKey] = self.authority.wrap_group_key_for(requester)
        if wrapped is None:
            self.requests_refused += 1
            self.events.record(self.sim.now, "key_request_refused", self.rsu_id,
                               requester=requester)
            return
        reply = KeyDistributionMessage(
            sender_id=self.rsu_id, timestamp=self.sim.now,
            key_id=wrapped.key_id, encrypted_key=wrapped.ciphertext,
            recipient_id=requester)
        reply.payload["tag"] = wrapped.tag.hex()
        reply.cert = self._certificate
        reply.signature = sign(self._keypair, reply.signing_bytes())
        self.radio.send(reply)
        self.keys_issued += 1
        self.events.record(self.sim.now, "group_key_issued", self.rsu_id,
                           to=requester, key_id=wrapped.key_id)

    def push_crl(self) -> None:
        if self.failed or self.authority is None:
            return
        msg = KeyDistributionMessage(sender_id=self.rsu_id, timestamp=self.sim.now,
                                     revoked_ids=tuple(sorted(self.authority.crl())))
        msg.cert = self._certificate
        msg.signature = sign(self._keypair, msg.signing_bytes())
        self.radio.send(msg)
