"""Trusted authority: registration, group keys, revocation.

The TA is the root of trust for the platooning service (the "platoon
enabling company" in the paper's terminology).  It owns the certificate
authority, provisions each vehicle with a long-term shared secret at
registration, manages the *group key* that symmetric message
authentication uses, and answers revocation queries.

Key wrapping uses a real stream construction: ``wrapped = key XOR
HKDF(shared_secret, key_id)`` with an HMAC integrity tag, so an
eavesdropper who captures a key-distribution frame learns nothing about
the group key without the recipient's shared secret.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.security.crypto import derive_key, hmac_tag, hmac_verify
from repro.security.pki import Certificate, CertificateAuthority

GROUP_KEY_BYTES = 32


@dataclass
class WrappedKey:
    key_id: str
    ciphertext: bytes
    tag: bytes


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class TrustedAuthority:
    """Back-end authority for the platooning service."""

    def __init__(self, rng: Optional[random.Random] = None,
                 ca_bits: int = 512) -> None:
        self.rng = rng or random.Random(0x7A)
        self.ca = CertificateAuthority(ca_id="TA", rng=self.rng, bits=ca_bits)
        self._shared_secrets: dict[str, bytes] = {}
        self._group_key_version = 0
        self._group_key = self._fresh_key()
        self._registered_rsus: set[str] = set()

    def _fresh_key(self) -> bytes:
        return bytes(self.rng.getrandbits(8) for _ in range(GROUP_KEY_BYTES))

    # ----------------------------------------------------------- registration

    def register_vehicle(self, vehicle_id: str, now: float = 0.0) -> bytes:
        """Enrol a vehicle; returns its long-term shared secret with the TA."""
        self.ca.enroll(vehicle_id, now)
        secret = self._shared_secrets.get(vehicle_id)
        if secret is None:
            secret = bytes(self.rng.getrandbits(8) for _ in range(32))
            self._shared_secrets[vehicle_id] = secret
        return secret

    def register_rsu(self, rsu_id: str, now: float = 0.0) -> tuple:
        """Enrol an RSU: it gets a TA-signed certificate vehicles can verify."""
        keypair, cert = self.ca.enroll(rsu_id, now)
        self._registered_rsus.add(rsu_id)
        return keypair, cert

    def is_registered_rsu(self, rsu_id: str) -> bool:
        return rsu_id in self._registered_rsus

    def shared_secret(self, vehicle_id: str) -> Optional[bytes]:
        return self._shared_secrets.get(vehicle_id)

    # ------------------------------------------------------------- group keys

    @property
    def group_key_id(self) -> str:
        return f"gk-{self._group_key_version}"

    def current_group_key(self) -> bytes:
        return self._group_key

    def rotate_group_key(self) -> str:
        """Issue a new group key (called periodically or after revocations)."""
        self._group_key_version += 1
        self._group_key = self._fresh_key()
        return self.group_key_id

    def wrap_group_key_for(self, vehicle_id: str) -> Optional[WrappedKey]:
        """Encrypt the current group key to one vehicle's shared secret.

        Returns None for unregistered or revoked vehicles -- this is the
        screening step that lets the TA "screen out anomalous users".
        """
        if self.ca.is_revoked(vehicle_id):
            return None
        secret = self._shared_secrets.get(vehicle_id)
        if secret is None:
            return None
        keystream = derive_key(secret, f"wrap:{self.group_key_id}", GROUP_KEY_BYTES)
        ciphertext = _xor(self._group_key, keystream)
        tag = hmac_tag(secret, self.group_key_id.encode() + ciphertext)
        return WrappedKey(key_id=self.group_key_id, ciphertext=ciphertext, tag=tag)

    @staticmethod
    def unwrap_group_key(secret: bytes, wrapped: WrappedKey) -> Optional[bytes]:
        """Vehicle-side unwrap; returns None on integrity failure."""
        if not hmac_verify(secret, wrapped.key_id.encode() + wrapped.ciphertext,
                           wrapped.tag):
            return None
        keystream = derive_key(secret, f"wrap:{wrapped.key_id}", GROUP_KEY_BYTES)
        return _xor(wrapped.ciphertext, keystream)

    # ------------------------------------------------------------- revocation

    def revoke_vehicle(self, vehicle_id: str, rotate: bool = True) -> None:
        """Revoke a vehicle and (by default) rotate the group key so the
        revoked node's copy becomes useless."""
        self.ca.revoke(vehicle_id)
        if rotate:
            self.rotate_group_key()

    def crl(self) -> frozenset[str]:
        return self.ca.crl()

    def certificate_of(self, subject_id: str) -> Optional[Certificate]:
        return self.ca.certificate_of(subject_id)
