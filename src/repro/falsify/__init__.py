"""Safety falsification: search for attack schedules that crash platoons.

The paper's open-challenges section observes that platoon security has
no canonical attack suite -- threats are narrated, defences are scored
on degradation.  This package closes the loop the way Koley et al.'s
CAD framework does (PAPERS.md): given an experiment spec (scenario +
defence stack), it *synthesises* the attack schedule -- which windows
the attack fires in, at what parameter strength, within an attacker
budget -- that produces a hard safety violation, and freezes every find
as a replayable counterexample in the regression corpus under
``tests/corpus/``.

Modules
-------
objective:
    What counts as a violation (collisions, negative true gap,
    emergency-brake envelope breach) and the scalar severity ordering.
schedule:
    Windowed, budgeted attack schedules over one experiment spec;
    sampling, descent neighbours, and materialisation into fully
    literal ``platoonsec-experiment/1`` specs / campaign units.
search:
    The seeded search engine (sampling -> coordinate descent ->
    tightening) on top of :class:`~repro.core.runner.CampaignRunner`.
corpus:
    Emission, enumeration and kernel-parametrised replay of committed
    counterexamples.
"""

from repro.falsify.corpus import (
    CORPUS_FORMAT,
    DEFAULT_CORPUS_DIR,
    CorpusEntry,
    ReplayReport,
    iter_corpus,
    replay_counterexample,
    write_counterexample,
)
from repro.falsify.objective import (
    SAFETY_METRICS,
    SafetyVerdict,
    assess,
    stealth_flag_rate,
)
from repro.falsify.schedule import AttackSchedule, AttackWindow, ScheduleSpace
from repro.falsify.search import (
    CandidateOutcome,
    FalsificationResult,
    Falsifier,
    SearchBudget,
)

__all__ = [
    "CORPUS_FORMAT",
    "DEFAULT_CORPUS_DIR",
    "SAFETY_METRICS",
    "AttackSchedule",
    "AttackWindow",
    "CandidateOutcome",
    "CorpusEntry",
    "FalsificationResult",
    "Falsifier",
    "ReplayReport",
    "SafetyVerdict",
    "ScheduleSpace",
    "SearchBudget",
    "assess",
    "iter_corpus",
    "replay_counterexample",
    "stealth_flag_rate",
    "write_counterexample",
]
