"""The falsification search: seeded sampling, descent, tightening.

Given an experiment spec and a base scenario, :class:`Falsifier` hunts
for an attack schedule that produces a hard safety violation (see
:mod:`repro.falsify.objective`), spending at most a fixed number of
episodes.  Every candidate runs through the shared
:class:`~repro.core.runner.CampaignRunner`, so evaluations are memoised,
fan out across workers, persist in the episode cache, and are
bit-reproducible: the whole search derives from one root seed via
:func:`~repro.core.runner.derive_seed` and involves no other
randomness.

Stages:

1. **Baseline** -- the undisturbed episode must be safe, otherwise any
   "counterexample" would be vacuous.
2. **Seeded sampling** -- rounds of random schedules from the
   :class:`~repro.falsify.schedule.ScheduleSpace`, stopping early on
   the first violation.
3. **Coordinate descent** -- single-knob neighbours (window boundaries,
   scale factors) of the most severe schedule so far; steps shrink when
   no neighbour improves.  This is the multi-dimensional refinement
   ROADMAP item 3 called for on top of the sweep machinery.
4. **Tightening** -- once a violation exists, replay it at a descending
   intensity grid (scale factors annealed toward 1.0) and locate the
   weakest variant that still violates; ``first_crossing`` on the
   severity-vs-intensity series estimates the violation threshold.

The result's :attr:`~FalsificationResult.counterexample` is always a
schedule that was **actually evaluated** -- never an interpolation -- so
materialising it replays bit-identically.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.experiment import ExperimentSpec
from repro.core.runner import CampaignRunner, EpisodeRecord, derive_seed
from repro.core.scenario import ScenarioConfig
from repro.falsify.objective import SafetyVerdict, assess, severity_key
from repro.falsify.schedule import AttackSchedule, ScheduleSpace
from repro.sweep.aggregate import first_crossing


@dataclass(frozen=True)
class SearchBudget:
    """How much the search may spend and how it moves."""

    episodes: int = 48          # hard cap on distinct episodes (baseline incl.)
    samples_per_round: int = 8  # random schedules per sampling round
    rounds: int = 3             # sampling rounds (distinct derived seeds)
    descent_passes: int = 4     # coordinate-descent sweeps
    time_step: float = 4.0      # initial window-boundary step [s]
    scale_step: float = 1.6     # initial multiplicative scale step
    tighten_grid: int = 5       # intensity grid points for tightening

    def __post_init__(self) -> None:
        if self.episodes < 2:
            raise ValueError("the search needs at least 2 episodes "
                             "(baseline + one candidate)")


@dataclass
class CandidateOutcome:
    """One evaluated schedule with its episode record and verdict."""

    stage: str
    schedule: AttackSchedule
    record: EpisodeRecord
    verdict: SafetyVerdict


@dataclass
class FalsificationResult:
    """Everything one :meth:`Falsifier.falsify` call produced."""

    spec_name: str
    root_seed: int
    budget: SearchBudget
    found: bool = False
    episodes_used: int = 0
    baseline: Optional[SafetyVerdict] = None
    #: Most severe candidate seen (violating when ``found``).
    best: Optional[CandidateOutcome] = None
    #: Weakest *violating* variant located by the tightening stage.
    minimal: Optional[CandidateOutcome] = None
    #: Interpolated attack intensity at which the violation appears
    #: (1.0 = the found schedule's own strength), when tightening ran.
    threshold_intensity: Optional[float] = None
    #: One lightweight row per evaluated candidate, in order.
    history: list = field(default_factory=list)
    #: The schedule space searched (set by :meth:`Falsifier.falsify`).
    space: Optional[ScheduleSpace] = None

    @property
    def counterexample(self) -> Optional[CandidateOutcome]:
        """The schedule to emit: the weakest violating one we evaluated."""
        if self.minimal is not None:
            return self.minimal
        return self.best if self.found else None

    def counterexample_spec(self) -> Optional[ExperimentSpec]:
        """The found violation as a fully-literal experiment spec."""
        outcome = self.counterexample
        if outcome is None or self.space is None:
            return None
        return self.space.to_experiment(outcome.schedule)

    def provenance(self) -> dict:
        """Search metadata frozen into an emitted corpus manifest."""
        return {
            "engine": "repro.falsify",
            "spec": self.spec_name,
            "root_seed": self.root_seed,
            "budget": dataclasses.asdict(self.budget),
            "episodes_used": self.episodes_used,
            "candidates": len(self.history),
            "threshold_intensity": self.threshold_intensity,
        }


class _SearchState:
    """Episode-budget accounting for one search."""

    def __init__(self, episodes: int) -> None:
        self.cap = episodes
        self.keys: set = set()

    @property
    def used(self) -> int:
        return len(self.keys)

    @property
    def remaining(self) -> int:
        return max(0, self.cap - self.used)


class Falsifier:
    """Searches a schedule space for safety violations.

    ``runner`` defaults to a fresh serial :class:`CampaignRunner`; pass
    one configured with workers / a result store -- or just a ``store``
    URL (``json:<dir>`` / ``sqlite:<path>``) -- to parallelise and
    persist candidate evaluations.  Memoised candidates in a shared
    store are reused across falsifier processes (budgeted-search
    campaigns hammer the same schedules from many workers), with unit
    leases keeping concurrent searches from evaluating one candidate
    twice.  ``log`` receives one progress line per stage.
    """

    def __init__(self, runner: Optional[CampaignRunner] = None, *,
                 store=None, root_seed: int = 42,
                 log: Optional[Callable[[str], None]] = None) -> None:
        if runner is not None and store is not None:
            raise ValueError("pass either a preconfigured runner or a "
                             "store, not both")
        self.runner = runner if runner is not None \
            else CampaignRunner(store=store)
        self.root_seed = int(root_seed)
        self._log = log if log is not None else (lambda message: None)

    # -------------------------------------------------------------- plumbing

    def _evaluate(self, space: ScheduleSpace,
                  schedules: Sequence[AttackSchedule], stage: str,
                  state: _SearchState,
                  result: FalsificationResult) -> list:
        """Run candidates within the episode budget; previously-seen
        schedules are re-read for free."""
        selected = []
        for schedule in schedules:
            episode = space.to_episode_spec(schedule)
            if episode.key not in state.keys:
                if state.remaining <= 0:
                    continue
                state.keys.add(episode.key)
            selected.append((schedule, episode))
        if not selected:
            return []
        records = self.runner.run([episode for _, episode in selected])
        outcomes = []
        for schedule, episode in selected:
            record = records[episode.key]
            verdict = assess(record.metrics)
            outcomes.append(CandidateOutcome(stage=stage, schedule=schedule,
                                             record=record, verdict=verdict))
            result.history.append({
                "stage": stage,
                "schedule": schedule.label(),
                "severity": verdict.severity,
                "collisions": verdict.collision_count,
                "violated": verdict.violated,
            })
        result.episodes_used = state.used
        return outcomes

    @staticmethod
    def _worst(outcomes: Sequence[CandidateOutcome]
               ) -> Optional[CandidateOutcome]:
        pool = [o for o in outcomes if o is not None]
        if not pool:
            return None
        return min(pool, key=lambda o: severity_key(o.verdict))

    # ---------------------------------------------------------------- search

    def falsify(self, spec: ExperimentSpec, base: ScenarioConfig,
                budget: Optional[SearchBudget] = None,
                **space_kwargs) -> FalsificationResult:
        """Search for a safety violation of ``spec`` under ``base``.

        Keyword arguments configure the
        :class:`~repro.falsify.schedule.ScheduleSpace` (``max_windows``,
        ``attack_seconds``, ``scale_range``, ``tune``, ...).
        """
        budget = budget if budget is not None else SearchBudget()
        space = ScheduleSpace(spec, base, **space_kwargs)
        result = FalsificationResult(spec_name=spec.display_name,
                                     root_seed=self.root_seed, budget=budget,
                                     space=space)
        state = _SearchState(budget.episodes)

        baseline_episode = space.baseline_spec()
        state.keys.add(baseline_episode.key)
        baseline = self.runner.run([baseline_episode])[baseline_episode.key]
        result.baseline = assess(baseline.metrics)
        result.episodes_used = state.used
        if result.baseline.violated:
            self._log(f"baseline already violates safety "
                      f"({result.baseline.describe()}); nothing to falsify")
            return result
        self._log(f"baseline safe: {result.baseline.describe()}")

        best = self._sample_stage(space, budget, state, result)
        best = self._descent_stage(space, budget, state, result, best)
        result.best = best
        result.found = best is not None and best.verdict.violated
        if result.found:
            self._tighten_stage(space, budget, state, result, best)
        return result

    def _sample_stage(self, space, budget, state, result):
        best = None
        for round_index in range(budget.rounds):
            if state.remaining <= 0:
                break
            rng = random.Random(derive_seed(
                self.root_seed, "falsify", space.spec.display_name,
                "round", round_index))
            schedules = [space.sample(rng)
                         for _ in range(budget.samples_per_round)]
            outcomes = self._evaluate(space, schedules,
                                      f"sample[{round_index}]", state, result)
            best = self._worst([best] + outcomes)
            if best is not None:
                self._log(f"sample[{round_index}]: best severity "
                          f"{best.verdict.severity:.2f} m "
                          f"({state.used}/{budget.episodes} episodes)")
            if best is not None and best.verdict.violated:
                break
        return best

    def _descent_stage(self, space, budget, state, result, best):
        time_step = budget.time_step
        scale_step = budget.scale_step
        for pass_index in range(budget.descent_passes):
            if best is None or best.verdict.violated or state.remaining <= 0:
                break
            neighbours = space.neighbours(best.schedule, time_step=time_step,
                                          scale_step=scale_step)
            outcomes = self._evaluate(space, neighbours,
                                      f"descent[{pass_index}]", state, result)
            challenger = self._worst(outcomes)
            if challenger is not None and (severity_key(challenger.verdict)
                                           < severity_key(best.verdict)):
                best = challenger
                self._log(f"descent[{pass_index}]: improved to severity "
                          f"{best.verdict.severity:.2f} m")
            else:
                time_step = max(time_step / 2.0, 0.5)
                scale_step = max(math.sqrt(scale_step), 1.05)
                self._log(f"descent[{pass_index}]: no improvement; steps "
                          f"-> {time_step:.2f}s / x{scale_step:.3f}")
        return best

    def _tighten_stage(self, space, budget, state, result, best) -> None:
        """Anneal the violation toward the weakest variant that still
        violates; the full-strength point is already cached, so the
        grid costs at most ``tighten_grid - 1`` fresh episodes."""
        if budget.tighten_grid < 2:
            return
        points = [index / (budget.tighten_grid - 1)
                  for index in range(budget.tighten_grid)]
        variants = [(intensity, space.rescaled(best.schedule, intensity))
                    for intensity in points]
        outcomes = self._evaluate(space, [s for _, s in variants],
                                  "tighten", state, result)
        by_schedule = {outcome.schedule: outcome for outcome in outcomes}
        evaluated = [(intensity, by_schedule[schedule])
                     for intensity, schedule in variants
                     if schedule in by_schedule]
        if not evaluated:
            return
        result.threshold_intensity = first_crossing(
            [intensity for intensity, _ in evaluated],
            [-outcome.verdict.severity for _, outcome in evaluated],
            0.0)
        violating = [(intensity, outcome) for intensity, outcome in evaluated
                     if outcome.verdict.violated]
        if violating:
            result.minimal = min(violating, key=lambda pair: pair[0])[1]
            self._log(f"tighten: weakest violating intensity "
                      f"{min(i for i, _ in violating):.2f} "
                      f"(threshold ~{result.threshold_intensity})")
