"""Attack schedules: windowed, budgeted perturbations of one experiment.

A *schedule* decides **when** an experiment's attack fires and **how
hard**: a set of non-overlapping time windows inside the episode, each
carrying multiplicative scale factors over the attack's numeric
parameters.  The total active time is capped by an attacker budget
(seconds of attack air-time), following the resource-aware attacker
model of Eslami & Pirani (PAPERS.md).

:class:`ScheduleSpace` binds a ``platoonsec-experiment/1`` spec to a
base scenario config and knows how to

* **sample** random schedules (seeded -- the search derives every draw
  from :func:`repro.core.runner.derive_seed`),
* enumerate coordinate-descent **neighbours** of a schedule (one window
  boundary moved, one scale nudged),
* **materialise** a schedule back into a fully-literal
  :class:`~repro.core.experiment.ExperimentSpec` (one attack component
  per window, ``start_time``/``stop_time`` pinned, every config value
  and parameter resolved -- no ``$config`` expressions survive), and
  into a runnable :class:`~repro.core.runner.EpisodeSpec` carrying that
  payload.

Materialised specs round-trip through JSON unchanged, which is what
makes an emitted counterexample *exactly* the schedule the search
evaluated -- the property the replay corpus depends on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.experiment import (
    ComponentSpec,
    ExperimentSpec,
    MetricSpec,
    resolve_value,
)
from repro.core.registry import REGISTRY, REQUIRED
from repro.core.runner import EpisodeSpec
from repro.core.scenario import ScenarioConfig

#: Parameters a schedule never scales: the schedule *owns* the timing.
_TIMING_PARAMS = {"start_time", "stop_time"}

#: Time quantum for window boundaries [s]; keeps emitted specs tidy.
_TIME_DECIMALS = 3
#: Precision for scale factors.
_SCALE_DECIMALS = 4
#: Precision for materialised parameter values.
_PARAM_DECIMALS = 6


def _round_time(value: float) -> float:
    return round(float(value), _TIME_DECIMALS)


@dataclass(frozen=True)
class AttackWindow:
    """One active window: ``[start, start + duration)`` with parameter
    scale factors ``((name, factor), ...)``."""

    start: float
    duration: float
    scales: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", _round_time(self.start))
        object.__setattr__(self, "duration", _round_time(self.duration))
        canon = tuple(sorted((str(name), round(float(factor), _SCALE_DECIMALS))
                             for name, factor in self.scales))
        object.__setattr__(self, "scales", canon)
        if self.duration <= 0:
            raise ValueError("window duration must be positive")

    @property
    def stop(self) -> float:
        return _round_time(self.start + self.duration)

    def label(self) -> str:
        scales = ",".join(f"{name}x{factor:g}" for name, factor in self.scales)
        return (f"{self.start:g}+{self.duration:g}s"
                + (f"[{scales}]" if scales else ""))


@dataclass(frozen=True)
class AttackSchedule:
    """An ordered tuple of non-overlapping attack windows."""

    windows: tuple

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.windows, key=lambda w: (w.start, w.stop)))
        object.__setattr__(self, "windows", ordered)
        if not ordered:
            raise ValueError("a schedule needs at least one window")
        for prev, nxt in zip(ordered, ordered[1:]):
            if nxt.start < prev.stop - 1e-6:
                raise ValueError(
                    f"windows overlap: {prev.label()} and {nxt.label()}")

    @property
    def active_seconds(self) -> float:
        return _round_time(sum(w.duration for w in self.windows))

    def label(self) -> str:
        return " ".join(w.label() for w in self.windows)


class ScheduleSpace:
    """The searchable schedule space of one experiment spec.

    Parameters
    ----------
    spec:
        The experiment under attack synthesis.  Windows schedule the
        spec's **first** attack component; any further attack components
        ride along verbatim (resolved) in every candidate.
    base:
        The base scenario config; window times live inside
        ``[warmup, duration]`` of the spec's *resolved* config.
    max_windows:
        Most windows a sampled schedule may use.
    attack_seconds:
        Attacker budget: total active seconds across windows.  Defaults
        to the whole post-warmup episode (no budget beyond physics).
    min_window:
        Shortest meaningful window [s].
    scale_range:
        ``(lo, hi)`` bounds for every parameter scale factor.
    tune:
        Optional explicit subset of parameter names to scale.  Defaults
        to every non-zero float parameter of the first attack component
        (timing parameters excluded).
    """

    def __init__(self, spec: ExperimentSpec, base: ScenarioConfig, *,
                 max_windows: int = 2,
                 attack_seconds: Optional[float] = None,
                 min_window: float = 2.0,
                 scale_range: tuple = (0.25, 4.0),
                 tune: Optional[Sequence[str]] = None) -> None:
        self.spec = spec
        self.base = base
        self.config = spec.build(base).config
        self.t0 = float(self.config.warmup)
        self.t1 = float(self.config.duration)
        if self.t1 - self.t0 < min_window:
            raise ValueError(
                f"episode leaves no room to attack: warmup {self.t0}s, "
                f"duration {self.t1}s, min window {min_window}s")
        self.min_window = float(min_window)
        span = self.t1 - self.t0
        self.attack_seconds = min(float(attack_seconds), span) \
            if attack_seconds is not None else span
        if self.attack_seconds < min_window:
            raise ValueError(
                f"attacker budget {self.attack_seconds}s is below the "
                f"minimum window of {min_window}s")
        self.max_windows = max(1, int(max_windows))
        lo, hi = float(scale_range[0]), float(scale_range[1])
        if not 0 < lo <= hi:
            raise ValueError(f"bad scale range {scale_range!r}")
        self.scale_range = (lo, hi)
        self._params = self._resolved_attack_params()
        self.tunable = self._tunable_params(tune)

    # ------------------------------------------------------------ parameters

    def _resolved_attack_params(self) -> dict:
        """Full literal parameter set of the scheduled attack component:
        registry defaults overlaid with the spec's resolved params."""
        component = self.spec.attacks[0]
        info = REGISTRY.get("attack", component.key)
        # Only JSON-primitive defaults are lifted into the literal spec;
        # anything richer stays at its constructor default.
        params = {name: p.default for name, p in info.params.items()
                  if p.default is not REQUIRED
                  and isinstance(p.default, (str, bool, int, float,
                                             type(None)))}
        params.update(component.resolve_params(self.base))
        return params

    def _tunable_params(self, tune: Optional[Sequence[str]]) -> tuple:
        numeric = [name for name, value in sorted(self._params.items())
                   if name not in _TIMING_PARAMS
                   and isinstance(value, float)
                   and not isinstance(value, bool)
                   and value != 0.0]
        if tune is None:
            return tuple(numeric)
        chosen = tuple(str(name) for name in tune)
        unknown = sorted(set(chosen) - set(numeric))
        if unknown:
            raise ValueError(
                f"cannot tune {unknown} on attack "
                f"{self.spec.attacks[0].key!r}; scalable parameters: "
                f"{numeric}")
        return chosen

    # -------------------------------------------------------------- sampling

    def sample(self, rng: random.Random) -> AttackSchedule:
        """One random budget-respecting schedule."""
        k = rng.randint(1, self.max_windows)
        k = min(k, max(1, int(self.attack_seconds // self.min_window)))
        # Split a random fraction of the budget into k window lengths.
        use = self.attack_seconds * rng.uniform(0.4, 1.0)
        use = max(use, k * self.min_window)
        weights = [rng.random() + 0.05 for _ in range(k)]
        total = sum(weights)
        slack = use - k * self.min_window
        durations = [self.min_window + slack * w / total for w in weights]
        # Place the windows without overlap: distribute the free time as
        # k+1 non-negative gaps (stars and bars).
        free = max(0.0, (self.t1 - self.t0) - sum(durations))
        gaps = [rng.random() for _ in range(k + 1)]
        gap_total = sum(gaps) or 1.0
        gaps = [free * g / gap_total for g in gaps]
        windows = []
        cursor = self.t0
        for gap, duration in zip(gaps, durations):
            start = cursor + gap
            windows.append(AttackWindow(
                start=start, duration=duration,
                scales=tuple((name, self._sample_scale(rng))
                             for name in self.tunable)))
            cursor = start + duration
        return AttackSchedule(windows=tuple(windows))

    def _sample_scale(self, rng: random.Random) -> float:
        lo, hi = self.scale_range
        return math.exp(rng.uniform(math.log(lo), math.log(hi)))

    # ------------------------------------------------------------ neighbours

    def neighbours(self, schedule: AttackSchedule, *,
                   time_step: float, scale_step: float) -> list:
        """Single-coordinate mutations of ``schedule`` for descent.

        Every neighbour moves exactly one knob: a window start shifted
        by ``±time_step``, a duration grown/shrunk by ``±time_step``
        (budget- and overlap-respecting), or one scale factor
        multiplied/divided by ``scale_step``.
        """
        out: dict[tuple, AttackSchedule] = {}

        def consider(windows: list) -> None:
            try:
                candidate = AttackSchedule(windows=tuple(windows))
            except ValueError:
                return
            key = tuple((w.start, w.duration, w.scales)
                        for w in candidate.windows)
            if candidate != schedule:
                out.setdefault(key, candidate)

        windows = list(schedule.windows)
        budget_slack = self.attack_seconds - schedule.active_seconds
        for i, window in enumerate(windows):
            prev_stop = windows[i - 1].stop if i > 0 else self.t0
            next_start = (windows[i + 1].start if i + 1 < len(windows)
                          else self.t1)
            for delta in (-time_step, +time_step):
                start = min(max(window.start + delta, prev_stop),
                            next_start - window.duration)
                if start >= prev_stop - 1e-9:
                    consider(windows[:i]
                             + [AttackWindow(start, window.duration,
                                             window.scales)]
                             + windows[i + 1:])
            grow = min(time_step, budget_slack,
                       next_start - window.stop)
            if grow > 1e-6:
                consider(windows[:i]
                         + [AttackWindow(window.start,
                                         window.duration + grow,
                                         window.scales)]
                         + windows[i + 1:])
            shrink = min(time_step, window.duration - self.min_window)
            if shrink > 1e-6:
                consider(windows[:i]
                         + [AttackWindow(window.start,
                                         window.duration - shrink,
                                         window.scales)]
                         + windows[i + 1:])
            for j, (name, factor) in enumerate(window.scales):
                for scaled in (factor * scale_step, factor / scale_step):
                    clamped = min(max(scaled, self.scale_range[0]),
                                  self.scale_range[1])
                    scales = list(window.scales)
                    scales[j] = (name, clamped)
                    consider(windows[:i]
                             + [AttackWindow(window.start, window.duration,
                                             tuple(scales))]
                             + windows[i + 1:])
        return list(out.values())

    def rescaled(self, schedule: AttackSchedule,
                 intensity: float) -> AttackSchedule:
        """The schedule with every scale factor moved toward 1.0.

        ``intensity=1`` is the schedule itself; ``intensity=0`` the
        unscaled attack in the same windows.  Used by the tightening
        stage to find the weakest variant that still violates.
        """
        windows = []
        for window in schedule.windows:
            scales = tuple(
                (name, min(max(factor ** intensity, self.scale_range[0]),
                           self.scale_range[1]))
                for name, factor in window.scales)
            windows.append(AttackWindow(window.start, window.duration, scales))
        return AttackSchedule(windows=tuple(windows))

    # --------------------------------------------------------- materialising

    def to_experiment(self, schedule: AttackSchedule) -> ExperimentSpec:
        """The schedule as a fully-literal ``platoonsec-experiment/1``.

        One attack component per window (``start_time``/``stop_time``
        pinned, scaled parameters applied); further attack components,
        defences and hooks of the original spec ride along with their
        parameters resolved.  The result round-trips through JSON
        byte-identically, so an emitted counterexample *is* the evaluated
        schedule.
        """
        key = self.spec.attacks[0].key
        attacks = []
        for window in schedule.windows:
            params = dict(self._params)
            for name, factor in dict(window.scales).items():
                params[name] = round(params[name] * factor, _PARAM_DECIMALS)
            params["start_time"] = window.start
            params["stop_time"] = window.stop
            attacks.append(ComponentSpec(key=key, params=params))
        attacks.extend(
            ComponentSpec(key=c.key, params=c.resolve_params(self.base))
            for c in self.spec.attacks[1:])
        literal_config = {name: resolve_value(value, self.base)
                          for name, value in self.spec.config.items()}
        return ExperimentSpec(
            name=f"{self.spec.display_name}:falsified",
            threat=self.spec.threat,
            variant=self.spec.variant,
            config=literal_config,
            attacks=tuple(attacks),
            defenses=tuple(
                ComponentSpec(key=c.key, params=c.resolve_params(self.base))
                for c in self.spec.defenses),
            hooks=tuple(
                ComponentSpec(key=c.key, params=c.resolve_params(self.base))
                for c in self.spec.hooks),
            metric=MetricSpec("min_true_gap"))

    def to_episode_spec(self, schedule: AttackSchedule) -> EpisodeSpec:
        """The schedule as a runnable, memoisable campaign unit."""
        espec = self.to_experiment(schedule)
        return EpisodeSpec(
            threat_key=espec.threat, variant=espec.variant,
            role="defended" if espec.defenses else "attacked",
            config=espec.build(self.base).config,
            experiment=espec.to_dict())

    def baseline_spec(self) -> EpisodeSpec:
        """The undisturbed episode every candidate is judged against."""
        espec = self.to_experiment(AttackSchedule(windows=(
            AttackWindow(self.t0, self.min_window),)))
        return EpisodeSpec(
            threat_key=espec.threat, variant=espec.variant, role="baseline",
            config=espec.build(self.base).config,
            experiment=espec.to_dict())
