"""The counterexample corpus: machine-found violations, frozen forever.

Every violation the falsifier finds can be emitted as a corpus entry --
one directory under ``tests/corpus/`` containing

* ``spec.json`` -- the fully-literal ``platoonsec-experiment/1`` spec of
  the violating schedule (replayable by ``platoonsec experiment`` too),
* ``manifest.json`` -- a ``platoonsec-counterexample/1`` document: the
  complete scenario config, the observed violation, and the search
  provenance (root seed, budget, episodes spent),
* ``trace.jsonl`` -- the schema-versioned episode trace recorded at
  emission time.

:func:`replay_counterexample` rebuilds the episode from spec + manifest
alone and re-runs it under any kernel; the trace *body* must match the
committed one byte-for-byte and the violation must reproduce.  The
pytest suite in ``tests/corpus/`` (marker ``corpus``) replays every
committed entry through both kernels, which makes the corpus the
canonical attack regression suite the paper says the field is missing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.experiment import ExperimentSpec, load_experiment_spec
from repro.core.scenario import ScenarioConfig, run_episode
from repro.falsify.objective import SafetyVerdict, assess
from repro.net.channel import ChannelConfig
from repro.obs.trace import trace_body_bytes
from repro.platoon.vehicle import VehicleConfig

#: Manifest format tag; bump on incompatible schema changes.
CORPUS_FORMAT = "platoonsec-counterexample/1"

#: Default corpus location, relative to the repo root.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"

SPEC_FILE = "spec.json"
MANIFEST_FILE = "manifest.json"
TRACE_FILE = "trace.jsonl"


def config_to_dict(config: ScenarioConfig) -> dict:
    """The *complete* plain-JSON view of a scenario config.

    Unlike :meth:`ScenarioConfig.canonical_dict` nothing is stripped:
    replay needs every field (the fading mode included) exactly as the
    search ran it.  The kernel is recorded for provenance but replay
    overrides it per leg.
    """
    return json.loads(json.dumps(dataclasses.asdict(config)))


def config_from_dict(data: dict) -> ScenarioConfig:
    """Rebuild a scenario config from :func:`config_to_dict` output."""
    overrides = dict(data)
    if isinstance(overrides.get("channel"), dict):
        overrides["channel"] = ChannelConfig(**overrides["channel"])
    if isinstance(overrides.get("vehicle"), dict):
        overrides["vehicle"] = VehicleConfig(**overrides["vehicle"])
    if isinstance(overrides.get("rsu_positions"), list):
        overrides["rsu_positions"] = tuple(overrides["rsu_positions"])
    return ScenarioConfig(**overrides)


@dataclass(frozen=True)
class CorpusEntry:
    """One committed counterexample directory."""

    path: Path
    manifest: dict

    @property
    def name(self) -> str:
        return str(self.manifest.get("name", self.path.name))

    @property
    def spec_path(self) -> Path:
        return self.path / SPEC_FILE

    @property
    def trace_path(self) -> Path:
        return self.path / TRACE_FILE

    def load_spec(self) -> ExperimentSpec:
        return load_experiment_spec(self.spec_path)

    def load_config(self) -> ScenarioConfig:
        return config_from_dict(self.manifest["config"])


@dataclass
class ReplayReport:
    """Outcome of replaying one corpus entry under one kernel."""

    entry: CorpusEntry
    kernel: str
    verdict: SafetyVerdict
    trace_matches: bool
    divergence: Optional[str] = None
    # False only when the manifest committed a detection ledger and the
    # replay's ledger differs; pre-detection manifests vacuously match.
    detection_matches: bool = True

    @property
    def ok(self) -> bool:
        return (self.trace_matches and self.detection_matches
                and self.verdict.violated)


def _build_episode(spec: ExperimentSpec, config: ScenarioConfig):
    """(config, attacks, defenses, hooks) for one corpus episode."""
    experiment = spec.build(config)
    return (experiment.config, experiment.make_attacks(),
            spec.build_defenses(config), experiment.hooks)


def _run_traced(spec: ExperimentSpec, config: ScenarioConfig,
                trace_path: Path, name: str):
    cfg, attacks, defenses, hooks = _build_episode(spec, config)
    return run_episode(cfg, attacks=attacks, defenses=defenses,
                       setup_hooks=hooks, trace_path=trace_path,
                       trace_meta={"spec_key": name})


def write_counterexample(corpus_dir: Union[str, Path],
                         spec: ExperimentSpec, config: ScenarioConfig, *,
                         provenance: Optional[dict] = None,
                         name: Optional[str] = None) -> CorpusEntry:
    """Freeze one violating spec as a corpus entry (spec + manifest +
    trace).

    The episode is re-run once with tracing on; if it does **not**
    violate safety, ``ValueError`` is raised -- the corpus only accepts
    real counterexamples.
    """
    spec_dict = spec.to_dict()
    blob = json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:10]
    entry_name = name or f"{spec.threat}-{digest}"
    path = Path(corpus_dir) / entry_name
    path.mkdir(parents=True, exist_ok=True)

    result = _run_traced(spec, config, path / TRACE_FILE, entry_name)
    verdict = assess(dataclasses.asdict(result.metrics))
    if not verdict.violated:
        (path / TRACE_FILE).unlink(missing_ok=True)
        raise ValueError(
            f"refusing to commit {entry_name!r}: the episode is safe "
            f"({verdict.describe()}) -- not a counterexample")

    manifest = {
        "format": CORPUS_FORMAT,
        "name": entry_name,
        "config": config_to_dict(config),
        "violation": {
            "collision_count": verdict.collision_count,
            "min_true_gap": verdict.min_true_gap,
            "min_brake_margin": verdict.min_brake_margin,
            "severity": verdict.severity,
        },
        "provenance": dict(provenance or {}),
        # The emission episode's full detection-ledger summary: replay
        # re-derives it and must reproduce it bit-identically.
        "detection": json.loads(json.dumps(result.detection)),
        "files": {"spec": SPEC_FILE, "trace": TRACE_FILE},
    }
    (path / SPEC_FILE).write_text(json.dumps(spec_dict, indent=2) + "\n")
    (path / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2) + "\n")
    return CorpusEntry(path=path, manifest=manifest)


def iter_corpus(corpus_dir: Union[str, Path, None] = None) -> list:
    """Every committed corpus entry, sorted by name; [] when absent."""
    root = Path(corpus_dir) if corpus_dir is not None else DEFAULT_CORPUS_DIR
    if not root.is_dir():
        return []
    entries = []
    for manifest_path in sorted(root.glob(f"*/{MANIFEST_FILE}")):
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != CORPUS_FORMAT:
            raise ValueError(
                f"{manifest_path}: unsupported corpus format "
                f"{manifest.get('format')!r}; expected {CORPUS_FORMAT!r}")
        entries.append(CorpusEntry(path=manifest_path.parent,
                                   manifest=manifest))
    return entries


def replay_counterexample(entry: CorpusEntry, *, kernel: str = "scalar",
                          work_dir: Union[str, Path, None] = None
                          ) -> ReplayReport:
    """Re-run one corpus entry under ``kernel`` and check it reproduces.

    The episode is rebuilt from the committed spec + manifest config
    alone.  The fresh trace body must equal the committed one
    byte-for-byte (kernels are trace-equivalent by construction) and the
    safety violation must reappear.
    """
    spec = entry.load_spec()
    config = entry.load_config().with_overrides(kernel=kernel)
    with tempfile.TemporaryDirectory(dir=work_dir) as tmp:
        trace_path = Path(tmp) / f"{entry.name}-{kernel}.trace.jsonl"
        result = _run_traced(spec, config, trace_path, entry.name)
        fresh = trace_body_bytes(trace_path)
        committed = trace_body_bytes(entry.trace_path)
        divergence = None
        if fresh != committed:
            from repro.analysis.tracediff import diff_traces

            divergence = diff_traces(entry.trace_path, trace_path).format()
    verdict = assess(dataclasses.asdict(result.metrics))
    detection_matches = True
    committed_detection = entry.manifest.get("detection")
    if committed_detection is not None:
        fresh_detection = json.loads(json.dumps(result.detection))
        detection_matches = fresh_detection == committed_detection
        if not detection_matches and divergence is None:
            divergence = ("detection ledger diverged from the committed "
                          "manifest (same trace bytes would have caught "
                          "record-level drift; this is summary-level)")
    return ReplayReport(entry=entry, kernel=kernel, verdict=verdict,
                        trace_matches=fresh == committed,
                        divergence=divergence,
                        detection_matches=detection_matches)
