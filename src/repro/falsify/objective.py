"""Safety objective for falsification: what counts as a violation.

The paper's open challenge is that defences are judged on *degradation*
metrics; the falsification engine instead hunts **hard safety
violations**:

* a **collision** -- ``World.collisions()`` reported a non-positive
  bumper gap (``collision_count > 0``);
* a **negative true gap** -- the worst bumper-to-bumper clearance seen
  anywhere in the world dropped to zero or below;
* an **emergency-brake envelope breach** -- ``min_brake_margin`` went
  non-positive: even if bumpers never touched, some follower could no
  longer stop without contact if its predecessor braked at the physical
  limit.

The scalar **severity** orders candidate attack schedules for the
search: the minimum of the two clearance metrics, in metres.  Lower is
worse; a non-positive severity *is* a violation.  Candidates that never
even dent the clearance still compare meaningfully, which is what lets
coordinate descent walk downhill long before anything crashes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

#: Metrics the objective reads from an episode's metrics dict.
SAFETY_METRICS = ("collision_count", "min_true_gap", "min_brake_margin")


def _clearance(value) -> Optional[float]:
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class SafetyVerdict:
    """The safety reading of one episode."""

    collision_count: int
    min_true_gap: Optional[float]
    min_brake_margin: Optional[float]
    severity: float
    violated: bool

    def describe(self) -> str:
        if self.collision_count:
            return (f"collision (x{self.collision_count}, "
                    f"min gap {self.min_true_gap:.2f} m)")
        if self.violated:
            return f"brake-envelope breach (margin {self.severity:.2f} m)"
        return f"safe (severity {self.severity:.2f} m)"


def assess(metrics: Mapping) -> SafetyVerdict:
    """Judge one episode's metrics dict against the safety objective.

    ``severity`` is ``min(min_true_gap, min_brake_margin)`` over the
    values that were observed; ``inf`` when neither was (a degenerate
    single-vehicle world).  A violation is a collision or a non-positive
    severity.
    """
    collisions = int(metrics.get("collision_count") or 0)
    gap = _clearance(metrics.get("min_true_gap"))
    margin = _clearance(metrics.get("min_brake_margin"))
    clearances = [v for v in (gap, margin) if v is not None]
    severity = min(clearances) if clearances else float("inf")
    return SafetyVerdict(
        collision_count=collisions,
        min_true_gap=gap,
        min_brake_margin=margin,
        severity=severity,
        violated=collisions > 0 or severity <= 0.0)


def severity_key(verdict: SafetyVerdict) -> tuple:
    """Sort key ordering verdicts worst-first (collisions break ties)."""
    return (verdict.severity, -verdict.collision_count)


def stealth_flag_rate(metrics: Mapping) -> float:
    """How loudly the defence stack objected to this episode.

    Reads the detection-telemetry projection (``flag_rate``: flagged +
    dropped verdicts over all verdicts) from an episode's metrics dict.
    A search that minimises this *alongside* severity hunts **stealthy**
    counterexamples -- schedules that degrade safety while staying under
    the deployed detectors' radar.  Defence-free episodes emit no
    verdicts and score 0.0 (nothing was watching, nothing objected).
    """
    return float(metrics.get("flag_rate") or 0.0)
