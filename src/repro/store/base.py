"""Pluggable content-addressed result stores.

A :class:`ResultStore` persists campaign episode records keyed by their
spec content hash (see :meth:`repro.core.runner.EpisodeSpec.key`).  The
store layer owns every persistence concern the campaign runner used to
carry inline: payload framing (``{"format", "key", "record"}``), corrupt
and stale-format entries (always a miss, never an exception), atomic
writes, and -- new with this layer -- an in-flight *lease* protocol so
several runner processes sharing one store never compute the same unit
twice.

Two backends ship:

* :class:`~repro.store.jsondir.JsonDirStore` -- one JSON file per key,
  bit-compatible with the historical ``cache_dir`` layout, selected by
  ``json:<directory>``;
* :class:`~repro.store.sqlite.SqliteStore` -- a single WAL-mode sqlite
  database with ``BEGIN IMMEDIATE`` upserts, safe for concurrent
  runners on one host, selected by ``sqlite:<path>``.

Lease protocol
--------------
Before computing a missing unit, a runner calls
:meth:`ResultStore.acquire`; the atomic answer is one of

``"hit"``
    the record appeared since the caller last looked -- load and reuse;
``"acquired"``
    the caller now holds the in-flight lease -- compute, then
    :meth:`ResultStore.store` (storing a result releases the lease);
``"held"``
    another live process holds the lease -- poll :meth:`ResultStore.load`
    and retry :meth:`acquire`; when the holder crashes, its lease
    expires after the TTL and the retry returns ``"acquired"``.

Leases are advisory and TTL-bounded: a holder that outlives its TTL
(e.g. an episode slower than the TTL) can be raced by a waiting runner,
so choose a TTL comfortably above the slowest expected unit.  The
sqlite backend makes every transition atomic under ``BEGIN IMMEDIATE``;
the JSON-directory backend uses ``O_EXCL`` lease files, which is
best-effort (adequate for the one-host many-runners deployment the
sqlite backend is the recommended answer to).
"""

from __future__ import annotations

import json
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

#: Framing format for cached episode records.  /5 added the detection
#: ledger summary (record.detection + detection-quality metrics); /4
#: added the highway merge counter (merges_completed) to the cached
#: metrics dict; /3 added the safety metrics; /2 added the per-episode
#: observability snapshot.  Entries in any other format are stale and
#: treated as misses.
CACHE_FORMAT = "platoonsec-episode-cache/5"

#: URL schemes understood by :func:`open_store`.
STORE_SCHEMES = ("json", "sqlite")

#: Default in-flight lease time-to-live (seconds).  Generous on purpose:
#: a waiting runner may legitimately take over after this long, so it
#: must exceed the slowest expected episode by a wide margin.
DEFAULT_LEASE_TTL = 600.0

ACQUIRE_STATES = ("hit", "acquired", "held")


class StoreError(Exception):
    """A backend-level storage failure (I/O, database, framing)."""


@dataclass(frozen=True)
class LeaseInfo:
    """One in-flight unit lease, as seen at stats time."""

    key: str
    owner: str
    expires: float          # epoch seconds
    active: bool            # unexpired at the stats() snapshot instant


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of a store's contents."""

    backend: str
    location: str
    entries: int
    total_bytes: int
    oldest: Optional[float] = None      # epoch seconds, stored_at
    newest: Optional[float] = None
    leases: int = 0                     # active (unexpired) leases
    expired_leases: int = 0             # expired but not yet purged
    lease_table: Tuple[LeaseInfo, ...] = ()

    def rows(self) -> list:
        """Table rows for the CLI (label, value)."""
        def age(stamp: Optional[float]) -> str:
            if stamp is None:
                return "-"
            return f"{max(time.time() - stamp, 0.0):.0f}s ago"
        return [["backend", self.backend],
                ["location", self.location],
                ["entries", self.entries],
                ["bytes", self.total_bytes],
                ["oldest entry", age(self.oldest)],
                ["newest entry", age(self.newest)],
                ["active leases", self.leases],
                ["expired leases", self.expired_leases]]

    def lease_rows(self) -> list:
        """Table rows for the in-flight lease table (one per lease)."""
        now = time.time()
        rows = []
        for lease in self.lease_table:
            remaining = lease.expires - now
            state = "active" if lease.active else "expired"
            rows.append([lease.key[:16], lease.owner, state,
                         f"{remaining:+.0f}s"])
        return rows


@dataclass
class VerifyReport:
    """Outcome of :meth:`ResultStore.verify`."""

    checked: int = 0
    problems: list = field(default_factory=list)    # (key, reason)

    @property
    def ok(self) -> bool:
        return not self.problems


def parse_store_url(url: Union[str, Path]) -> Tuple[str, str]:
    """Split a ``scheme:location`` store URL into its parts.

    A bare :class:`~pathlib.Path` (no scheme) is a JSON directory --
    the historical ``cache_dir`` meaning.  Strings must carry an
    explicit ``json:`` or ``sqlite:`` scheme so a typo'd path can never
    silently select the wrong backend.
    """
    if isinstance(url, Path):
        return "json", str(url)
    text = str(url)
    scheme, sep, location = text.partition(":")
    if not sep or scheme not in STORE_SCHEMES:
        raise ValueError(
            f"bad store URL {text!r}; expected one of "
            + ", ".join(f"'{s}:<path>'" for s in STORE_SCHEMES))
    if not location:
        raise ValueError(f"store URL {text!r} has an empty path")
    return scheme, location


def open_store(url: Union[str, Path, "ResultStore"],
               create: bool = True) -> "ResultStore":
    """Open a result store from a URL (or pass an instance through).

    ``create=False`` refuses to open a location that does not exist yet
    (the CLI inspection commands use it so ``store stats`` on a typo'd
    path errors instead of minting an empty store).
    """
    if isinstance(url, ResultStore):
        return url
    scheme, location = parse_store_url(url)
    if scheme == "json":
        from repro.store.jsondir import JsonDirStore

        return JsonDirStore(location, create=create)
    from repro.store.sqlite import SqliteStore

    return SqliteStore(location, create=create)


class ResultStore(ABC):
    """Content-addressed record storage with in-flight unit leases.

    Subclasses implement the storage and lease primitives; the framing
    (format/key validation), migration round-trip helper and aggregate
    operations (:meth:`stats`, :meth:`verify`, :meth:`gc`) are shared.
    ``fmt`` is the payload framing format; entries in any other format
    are stale and load as ``None``.
    """

    backend: str = "?"

    def __init__(self, fmt: str = CACHE_FORMAT) -> None:
        self.format = fmt

    # ------------------------------------------------------------ records

    def load(self, key: str) -> Optional[dict]:
        """The record stored under ``key``; ``None`` on miss, corrupt
        payload, stale format or embedded-key mismatch."""
        payload = self._read_payload(key)
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != self.format or payload.get("key") != key:
            return None
        record = payload.get("record")
        return record if isinstance(record, dict) else None

    def store(self, key: str, record: dict) -> None:
        """Persist ``record`` under ``key`` and release any lease on it."""
        self._write_payload(key, {"format": self.format, "key": key,
                                  "record": record})
        self._drop_lease(key)

    def delete(self, key: str) -> bool:
        """Remove the entry (and any lease) for ``key``; True if it
        existed."""
        self._drop_lease(key)
        return self._delete_entry(key)

    def items(self) -> Iterator[Tuple[str, Optional[dict]]]:
        """Every ``(key, record)`` pair; corrupt entries yield None."""
        for key in self.keys():
            yield key, self.load(key)

    # ------------------------------------------------------------- leases

    def acquire(self, key: str, owner: str,
                ttl: float = DEFAULT_LEASE_TTL) -> str:
        """Try to claim the in-flight lease for ``key``.

        Returns ``"hit"`` when a record for ``key`` already exists,
        ``"acquired"`` when the caller now holds (or refreshed) the
        lease, ``"held"`` when another unexpired owner does.
        """
        return self._acquire_lease(key, owner, float(ttl), time.time())

    def release(self, key: str, owner: str) -> None:
        """Drop ``owner``'s lease on ``key`` (no-op for other owners)."""
        held = self.lease_holder(key)
        if held is not None and held[0] == owner:
            self._drop_lease(key)

    def lease_holder(self, key: str) -> Optional[Tuple[str, float]]:
        """The active ``(owner, expires)`` lease on ``key``, if any."""
        row = self._lease_row(key)
        if row is None or row[1] <= time.time():
            return None
        return row

    def purge_leases(self) -> int:
        """Drop expired leases; returns how many were removed."""
        now = time.time()
        purged = 0
        for key, _, expires in self._iter_leases():
            if expires <= now:
                self._drop_lease(key)
                purged += 1
        return purged

    def active_leases(self) -> int:
        now = time.time()
        return sum(1 for _, _, expires in self._iter_leases()
                   if expires > now)

    # ---------------------------------------------------------- aggregate

    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for key in self.keys():
            entries += 1
            total += self._entry_size(key)
            stamp = self.entry_mtime(key)
            if stamp is not None:
                oldest = stamp if oldest is None else min(oldest, stamp)
                newest = stamp if newest is None else max(newest, stamp)
        # One clock read for the whole lease snapshot so a lease cannot
        # straddle the active/expired split.
        now = time.time()
        lease_table = tuple(
            LeaseInfo(key=key, owner=owner, expires=expires,
                      active=expires > now)
            for key, owner, expires in sorted(self._iter_leases()))
        active = sum(1 for lease in lease_table if lease.active)
        return StoreStats(backend=self.backend, location=self.location(),
                          entries=entries, total_bytes=total,
                          oldest=oldest, newest=newest,
                          leases=active,
                          expired_leases=len(lease_table) - active,
                          lease_table=lease_table)

    def verify(self) -> VerifyReport:
        """Re-check every entry against its key and framing.

        The storage key *is* the spec content hash, and a well-formed
        record names it again as ``spec_key``; any disagreement (or an
        unreadable/stale payload) is reported rather than repaired.
        """
        report = VerifyReport()
        for key in self.keys():
            report.checked += 1
            payload = self._read_payload(key)
            if not isinstance(payload, dict):
                report.problems.append((key, "unreadable payload"))
                continue
            if payload.get("format") != self.format:
                report.problems.append(
                    (key, f"stale format {payload.get('format')!r} "
                          f"(expected {self.format!r})"))
                continue
            if payload.get("key") != key:
                report.problems.append(
                    (key, f"embedded key {payload.get('key')!r} does not "
                          "match the storage key"))
                continue
            record = payload.get("record")
            if not isinstance(record, dict):
                report.problems.append((key, "record is not an object"))
                continue
            if record.get("spec_key") not in (None, key):
                report.problems.append(
                    (key, f"record spec_key {record.get('spec_key')!r} "
                          "does not re-hash to the storage key"))
                continue
            problem = self._verify_entry(key, payload)
            if problem is not None:
                report.problems.append((key, problem))
        return report

    def gc(self, older_than: Optional[float] = None,
           now: Optional[float] = None) -> list:
        """Drop entries older than ``older_than`` seconds (and every
        expired lease); returns the deleted keys."""
        now = time.time() if now is None else now
        deleted = []
        if older_than is not None:
            for key in list(self.keys()):
                stamp = self.entry_mtime(key)
                if stamp is not None and now - stamp > older_than:
                    self.delete(key)
                    deleted.append(key)
        self.purge_leases()
        return deleted

    # ----------------------------------------------------------- identity

    def url(self) -> str:
        """The ``scheme:location`` URL that reopens this store."""
        return f"{self.backend}:{self.location()}"

    def default_run_log_path(self) -> Path:
        """Where the CLI drops ``run-log.jsonl`` for this store."""
        return self.run_log_dir() / "run-log.jsonl"

    def close(self) -> None:                # pragma: no cover - trivial
        pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.location()!r})"

    # ---------------------------------------------------------- primitives

    @abstractmethod
    def keys(self) -> list:
        """Every stored key (corrupt entries included)."""

    @abstractmethod
    def entry_mtime(self, key: str) -> Optional[float]:
        """Epoch seconds the entry was last stored; None if absent."""

    @abstractmethod
    def location(self) -> str:
        """The backend's storage location (directory or database path)."""

    @abstractmethod
    def run_log_dir(self) -> Path:
        """Directory where run logs naturally live for this backend."""

    @abstractmethod
    def _read_payload(self, key: str) -> Optional[dict]:
        """Raw framed payload; None when missing or unparseable."""

    @abstractmethod
    def _write_payload(self, key: str, payload: dict) -> None:
        """Atomically persist a framed payload (upsert)."""

    @abstractmethod
    def _delete_entry(self, key: str) -> bool:
        ...

    @abstractmethod
    def _entry_size(self, key: str) -> int:
        ...

    @abstractmethod
    def _acquire_lease(self, key: str, owner: str, ttl: float,
                       now: float) -> str:
        ...

    @abstractmethod
    def _drop_lease(self, key: str) -> None:
        ...

    @abstractmethod
    def _lease_row(self, key: str) -> Optional[Tuple[str, float]]:
        """The raw ``(owner, expires)`` lease row, expired or not."""

    @abstractmethod
    def _iter_leases(self) -> Iterator[Tuple[str, str, float]]:
        """Every raw lease as ``(key, owner, expires)``."""

    def _verify_entry(self, key: str, payload: dict) -> Optional[str]:
        """Backend-specific integrity hook (e.g. checksum re-hash)."""
        return None


def canonical_record_bytes(record: dict) -> bytes:
    """The byte-identity unit for migration round-trips.

    Two stores hold byte-identical copies of a record iff their
    canonical encodings compare equal, regardless of backend framing
    (file indentation vs database row).
    """
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def migrate(src: ResultStore, dst: ResultStore) -> Tuple[int, list]:
    """Copy every readable record from ``src`` into ``dst``.

    Each migrated record is reloaded from ``dst`` and compared
    byte-for-byte (canonical encoding) against the source; any
    divergence -- and any unreadable source entry -- lands in the
    returned problem list instead of silently degrading the copy.
    Returns ``(migrated_count, problems)``.
    """
    migrated = 0
    problems: list = []
    for key in src.keys():
        record = src.load(key)
        if record is None:
            problems.append((key, "unreadable in source store"))
            continue
        dst.store(key, record)
        back = dst.load(key)
        if back is None or (canonical_record_bytes(back)
                            != canonical_record_bytes(record)):
            problems.append((key, "round-trip through destination "
                                  "store is not byte-identical"))
            continue
        migrated += 1
    return migrated, problems
