"""Pluggable content-addressed result stores for campaign episodes.

Public surface::

    open_store("json:/path/to/dir")     # one JSON file per key
    open_store("sqlite:/path/store.db") # one WAL-mode database

plus the :class:`ResultStore` ABC (lease protocol, stats/verify/gc) and
:func:`migrate` for byte-identical backend-to-backend copies.  See
:mod:`repro.store.base` for the protocol contract.
"""

from repro.store.base import (
    CACHE_FORMAT,
    DEFAULT_LEASE_TTL,
    STORE_SCHEMES,
    LeaseInfo,
    ResultStore,
    StoreError,
    StoreStats,
    VerifyReport,
    canonical_record_bytes,
    migrate,
    open_store,
    parse_store_url,
)
from repro.store.jsondir import JsonDirStore
from repro.store.sqlite import SqliteStore

__all__ = [
    "CACHE_FORMAT",
    "DEFAULT_LEASE_TTL",
    "STORE_SCHEMES",
    "LeaseInfo",
    "ResultStore",
    "StoreError",
    "StoreStats",
    "VerifyReport",
    "canonical_record_bytes",
    "migrate",
    "open_store",
    "parse_store_url",
    "JsonDirStore",
    "SqliteStore",
]
