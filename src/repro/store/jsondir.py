"""JSON-directory result store: one file per key.

This backend is bit-compatible with the historical
``CampaignRunner(cache_dir=...)`` layout: ``<dir>/<key>.json`` holding
``{"format", "key", "record"}`` serialised with ``indent=1``.  Caches
written before the store layer existed keep hitting with zero
migration, and files this backend writes are byte-identical to what the
pre-store runner wrote.

Writes are atomic: the payload lands in ``<key>.tmp`` and is
``os.replace``d over the real name, so a killed worker can never leave
a truncated entry under a valid key -- at worst it leaves a ``*.tmp``
orphan, which readers never look at and ``gc`` sweeps up.

Leases are ``<key>.lease`` files created with ``O_EXCL``.  Creation is
atomic; expiry takeover (rewriting an expired lease) is best-effort --
for many concurrent runners on one host, prefer the sqlite backend.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.store.base import CACHE_FORMAT, ResultStore


class JsonDirStore(ResultStore):
    """One ``<key>.json`` file per record inside one directory."""

    backend = "json"

    def __init__(self, root: Union[str, Path], fmt: str = CACHE_FORMAT,
                 create: bool = True) -> None:
        super().__init__(fmt)
        self.root = Path(root)
        if create:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except (FileExistsError, NotADirectoryError):
                raise ValueError(
                    f"cache dir {self.root} exists and is not a "
                    "directory") from None
        elif not self.root.is_dir():
            raise ValueError(f"store directory {self.root} does not exist")

    # ----------------------------------------------------------- locations

    def location(self) -> str:
        return str(self.root)

    def run_log_dir(self) -> Path:
        return self.root

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    # ------------------------------------------------------------- records

    def keys(self) -> list:
        return sorted(path.stem for path in self.root.glob("*.json"))

    def entry_mtime(self, key: str) -> Optional[float]:
        try:
            return self._path(key).stat().st_mtime
        except OSError:
            return None

    def _read_payload(self, key: str) -> Optional[dict]:
        try:
            return json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None

    def _write_payload(self, key: str, payload: dict) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(payload, indent=1))
            os.replace(tmp, path)
        except OSError:
            # Best-effort persistence, matching the historical runner
            # cache: a full or vanished disk degrades to recomputation.
            pass

    def _delete_entry(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def _entry_size(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except OSError:
            return 0

    # -------------------------------------------------------------- leases

    def _acquire_lease(self, key: str, owner: str, ttl: float,
                       now: float) -> str:
        if self._path(key).exists():
            return "hit"
        lease = self._lease_path(key)
        body = json.dumps({"owner": owner, "expires": now + ttl})
        try:
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            with os.fdopen(fd, "w") as fh:
                fh.write(body)
            return "acquired"
        except FileExistsError:
            pass
        except OSError:
            # Unwritable store: pretend acquired so the caller computes.
            return "acquired"
        row = self._lease_row(key)
        if row is not None and row[1] > now and row[0] != owner:
            return "held"
        # Expired, corrupt or our own lease: take it over (best-effort).
        tmp = lease.parent / (lease.name + ".tmp")
        try:
            tmp.write_text(body)
            os.replace(tmp, lease)
        except OSError:
            pass
        return "acquired"

    def _drop_lease(self, key: str) -> None:
        try:
            self._lease_path(key).unlink()
        except OSError:
            pass

    def _lease_row(self, key: str) -> Optional[Tuple[str, float]]:
        try:
            data = json.loads(self._lease_path(key).read_text())
            return str(data["owner"]), float(data["expires"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _iter_leases(self) -> Iterator[Tuple[str, str, float]]:
        for path in self.root.glob("*.lease"):
            row = self._lease_row(path.stem)
            if row is not None:
                yield path.stem, row[0], row[1]
            else:
                # Corrupt lease files block nothing; sweep them.
                try:
                    path.unlink()
                except OSError:
                    pass

    # ----------------------------------------------------------------- gc

    def gc(self, older_than: Optional[float] = None,
           now: Optional[float] = None) -> list:
        deleted = super().gc(older_than=older_than, now=now)
        # Orphaned atomic-write temporaries from killed workers.
        cutoff = (time.time() if now is None else now) - 60.0
        for tmp in self.root.glob("*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                pass
        return deleted
