"""Sqlite result store: one WAL-mode database, concurrent-runner safe.

All records live in a single ``store.db``: the ``records`` table keys
rows by spec content hash and carries the canonical JSON record text
plus a sha256 checksum of it (``verify`` re-hashes every row), and the
``leases`` table holds the in-flight unit leases.  Every mutation runs
under ``BEGIN IMMEDIATE``, so two runner processes sharing the database
serialise their upserts and lease transitions -- the property the
campaign runner's no-double-execution guarantee is built on.

Connections are opened lazily per thread and per process (sqlite3
objects are bound to the thread that created them, and sharing one
across ``fork`` corrupts its file handle): each thread of each process
gets its own connection to the same database file, and the WAL +
``BEGIN IMMEDIATE`` discipline serialises their writes.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.store.base import CACHE_FORMAT, ResultStore, StoreError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key       TEXT PRIMARY KEY,
    format    TEXT NOT NULL,
    record    TEXT NOT NULL,
    sha256    TEXT NOT NULL,
    stored_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    key     TEXT PRIMARY KEY,
    owner   TEXT NOT NULL,
    expires REAL NOT NULL
);
"""


def _record_text(record: dict) -> str:
    # Key order is preserved, not canonicalised: a json -> sqlite ->
    # json migration must hand back byte-identical cache files.
    return json.dumps(record, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SqliteStore(ResultStore):
    """All records in one sqlite database (WAL, ``BEGIN IMMEDIATE``)."""

    backend = "sqlite"

    def __init__(self, path: Union[str, Path], fmt: str = CACHE_FORMAT,
                 create: bool = True, timeout: float = 30.0) -> None:
        super().__init__(fmt)
        self.path = Path(path)
        self.timeout = float(timeout)
        self._local = threading.local()
        if not create and not self.path.exists():
            raise ValueError(f"store database {self.path} does not exist")
        if create:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
            except (FileExistsError, NotADirectoryError):
                raise ValueError(
                    f"store path {self.path} is not reachable (parent is "
                    "not a directory)") from None
        try:
            self._connect()
        except sqlite3.Error as exc:
            raise ValueError(
                f"store database {self.path} cannot be opened: "
                f"{exc}") from None

    # ---------------------------------------------------------- connection

    def _connect(self) -> sqlite3.Connection:
        # One connection per (process, thread): a connection inherited
        # across fork shares the parent's file handle and must be
        # discarded, never used.
        if getattr(self._local, "pid", None) != os.getpid():
            self._local.conn = None
            self._local.pid = os.getpid()
        if self._local.conn is None:
            conn = sqlite3.connect(str(self.path), timeout=self.timeout,
                                   isolation_level=None)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            self._local.conn = conn
        return self._local.conn

    @contextmanager
    def _txn(self):
        """One ``BEGIN IMMEDIATE`` write transaction."""
        conn = self._connect()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            conn.close()
        self._local.conn = None

    # ----------------------------------------------------------- locations

    def location(self) -> str:
        return str(self.path)

    def run_log_dir(self) -> Path:
        """Run logs live next to the database, never inside it."""
        return self.path.parent

    # ------------------------------------------------------------- records

    def keys(self) -> list:
        rows = self._connect().execute(
            "SELECT key FROM records ORDER BY key").fetchall()
        return [row[0] for row in rows]

    def entry_mtime(self, key: str) -> Optional[float]:
        row = self._connect().execute(
            "SELECT stored_at FROM records WHERE key = ?", (key,)).fetchone()
        return float(row[0]) if row is not None else None

    def _read_payload(self, key: str) -> Optional[dict]:
        try:
            row = self._connect().execute(
                "SELECT format, record FROM records WHERE key = ?",
                (key,)).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        try:
            record = json.loads(row[1])
        except ValueError:
            return None
        return {"format": row[0], "key": key, "record": record}

    def _write_payload(self, key: str, payload: dict) -> None:
        text = _record_text(payload["record"])
        try:
            with self._txn() as conn:
                conn.execute(
                    "INSERT INTO records "
                    "(key, format, record, sha256, stored_at) "
                    "VALUES (?, ?, ?, ?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET "
                    "format = excluded.format, record = excluded.record, "
                    "sha256 = excluded.sha256, "
                    "stored_at = excluded.stored_at",
                    (key, payload["format"], text, _sha256(text),
                     time.time()))
                conn.execute("DELETE FROM leases WHERE key = ?", (key,))
        except sqlite3.Error as exc:
            raise StoreError(f"sqlite store {self.path}: {exc}") from exc

    def _delete_entry(self, key: str) -> bool:
        with self._txn() as conn:
            cursor = conn.execute("DELETE FROM records WHERE key = ?",
                                  (key,))
            return cursor.rowcount > 0

    def _entry_size(self, key: str) -> int:
        row = self._connect().execute(
            "SELECT length(record) FROM records WHERE key = ?",
            (key,)).fetchone()
        return int(row[0]) if row is not None else 0

    def _verify_entry(self, key: str, payload: dict) -> Optional[str]:
        row = self._connect().execute(
            "SELECT record, sha256 FROM records WHERE key = ?",
            (key,)).fetchone()
        if row is None:                      # pragma: no cover - racy delete
            return None
        if _sha256(row[0]) != row[1]:
            return "stored sha256 checksum does not match the record text"
        return None

    # -------------------------------------------------------------- leases

    def _acquire_lease(self, key: str, owner: str, ttl: float,
                       now: float) -> str:
        try:
            with self._txn() as conn:
                hit = conn.execute(
                    "SELECT 1 FROM records WHERE key = ?", (key,)).fetchone()
                if hit is not None:
                    return "hit"
                row = conn.execute(
                    "SELECT owner, expires FROM leases WHERE key = ?",
                    (key,)).fetchone()
                if row is not None and row[1] > now and row[0] != owner:
                    return "held"
                conn.execute(
                    "INSERT INTO leases (key, owner, expires) "
                    "VALUES (?, ?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET "
                    "owner = excluded.owner, expires = excluded.expires",
                    (key, owner, now + ttl))
                return "acquired"
        except sqlite3.Error as exc:
            raise StoreError(f"sqlite store {self.path}: {exc}") from exc

    def _drop_lease(self, key: str) -> None:
        try:
            with self._txn() as conn:
                conn.execute("DELETE FROM leases WHERE key = ?", (key,))
        except sqlite3.Error:
            pass

    def _lease_row(self, key: str) -> Optional[Tuple[str, float]]:
        row = self._connect().execute(
            "SELECT owner, expires FROM leases WHERE key = ?",
            (key,)).fetchone()
        return (str(row[0]), float(row[1])) if row is not None else None

    def _iter_leases(self) -> Iterator[Tuple[str, str, float]]:
        rows = self._connect().execute(
            "SELECT key, owner, expires FROM leases ORDER BY key").fetchall()
        for key, owner, expires in rows:
            yield key, str(owner), float(expires)
