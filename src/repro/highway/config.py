"""Declarative highway layout: lanes, platoons, background traffic.

These are pure-data dataclasses (no simulator imports) so they nest
inside :class:`repro.core.scenario.ScenarioConfig` and flow through its
``canonical_dict`` / content-hash machinery unchanged: a highway episode
is identified by exactly this layout plus the base scenario knobs.

Everything here is JSON-round-trippable -- experiment specs and sweep
bases supply plain dicts, which the ``__post_init__`` hooks coerce back
into typed specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class PlatoonSpec:
    """One pre-formed platoon on the highway.

    ``speed=None`` inherits the scenario's ``initial_speed``; platoons
    with distinct speeds are how merge scenarios create closure (a
    faster rear platoon catches the one ahead).
    """

    n_vehicles: int = 3
    lane: int = 0
    start_position: float = 1000.0   # leader's starting coordinate [m]
    speed: Optional[float] = None    # cruise speed [m/s]; None = scenario default
    trucks: bool = False

    def __post_init__(self) -> None:
        if self.n_vehicles < 1:
            raise ValueError("PlatoonSpec.n_vehicles must be >= 1")


def _coerce_platoon(entry) -> PlatoonSpec:
    if isinstance(entry, PlatoonSpec):
        return entry
    if isinstance(entry, dict):
        return PlatoonSpec(**entry)
    raise TypeError(f"platoon spec must be a PlatoonSpec or dict, got {entry!r}")


@dataclass
class HighwayConfig:
    """Layout of a multi-platoon highway episode.

    Attributes
    ----------
    lanes:
        Number of parallel lanes (lane indices ``0..lanes-1``).
    platoons:
        Pre-formed platoons, in construction order.  The first entry is
        the *primary* platoon: it keeps the legacy aliases
        (``scenario.leader``, ``scenario.platoon_vehicles``) and is what
        the metrics layer scores, so attacks and defences written for
        the single-platoon world keep working unchanged.
    background_density:
        Free-driving (non-platooned) vehicles per km of road.  They
        beacon at the normal CAM rate, so density directly converts
        into channel contention for every platoon.
    road_length:
        Span of road behind the rearmost platoon that background
        traffic is seeded over [m].
    merge_policy:
        ``"none"`` -- platoons never merge on their own; ``"auto"`` --
        a rear leader that discovers a same-lane platoon ahead within
        ``merge_range`` negotiates a merge (leader-to-leader protocol).
    merge_range:
        Maximum head-to-tail distance for an automatic merge request [m].
    announce_interval:
        Period of the leaders' PLATOON_ANNOUNCE discovery broadcast [s].
    lane_change_interval:
        Period of the scripted background lane-change driver [s];
        ``0`` disables it.  Lane changes exercise the lane-partitioned
        predecessor-map invalidation in :class:`repro.platoon.world.World`.
    """

    lanes: int = 2
    platoons: tuple = field(default_factory=lambda: (
        PlatoonSpec(n_vehicles=4, lane=0, start_position=1200.0),
        PlatoonSpec(n_vehicles=4, lane=0, start_position=1000.0),
    ))
    background_density: float = 0.0
    road_length: float = 2000.0
    merge_policy: str = "none"
    merge_range: float = 200.0
    announce_interval: float = 1.0
    lane_change_interval: float = 0.0

    def __post_init__(self) -> None:
        self.platoons = tuple(_coerce_platoon(p) for p in self.platoons)
        if self.lanes < 1:
            raise ValueError("HighwayConfig.lanes must be >= 1")
        if not self.platoons:
            raise ValueError("HighwayConfig.platoons must not be empty")
        for spec in self.platoons:
            if not (0 <= spec.lane < self.lanes):
                raise ValueError(
                    f"platoon lane {spec.lane} outside 0..{self.lanes - 1}")
        if self.merge_policy not in ("none", "auto"):
            raise ValueError(
                f"merge_policy must be 'none' or 'auto', got {self.merge_policy!r}")
        if self.announce_interval <= 0:
            raise ValueError("announce_interval must be > 0")

    # ------------------------------------------------------------- derived

    def background_count(self) -> int:
        """Number of background vehicles implied by the density."""
        return int(self.background_density * self.road_length / 1000.0 + 0.5)

    def total_vehicles(self) -> int:
        """Platoon + background vehicle count (excludes joiner/attackers)."""
        return (sum(spec.n_vehicles for spec in self.platoons)
                + self.background_count())
