"""Multi-platoon highway world.

``repro.highway`` promotes the single-platoon scenario into a multi-lane
highway: several concurrent platoons (each with its own leader and
roster), free-driving background vehicles contending for the same
802.11p channel, an inter-platoon discovery/announcement layer, and
leader-to-leader merge negotiation.  The subsystem is layered *on top*
of the existing substrate -- vehicles, world, channel, kernels -- so the
scalar and vector kernels stay bit-identical on highway scenarios.

Entry point: set :class:`HighwayConfig` on
:attr:`repro.core.scenario.ScenarioConfig.highway`.
"""

from repro.highway.config import HighwayConfig, PlatoonSpec
from repro.highway.builder import HighwayWorld, PlatoonHandle, build_highway
from repro.highway.coordinator import HighwayCoordinator

__all__ = [
    "HighwayConfig",
    "PlatoonSpec",
    "HighwayWorld",
    "PlatoonHandle",
    "build_highway",
    "HighwayCoordinator",
]
