"""Inter-platoon discovery and merge coordination.

Each platoon leader runs a :class:`HighwayCoordinator` implementing the
discovery -> announcement -> coordination layering:

* **Announcement**: every ``announce_interval`` the leader broadcasts a
  ``PLATOON_ANNOUNCE`` manoeuvre message advertising its platoon (id,
  size, lane, head/tail extent, speed).  Announcements ride the normal
  outbound path, so installed defences sign them like any other
  manoeuvre traffic.
* **Discovery**: coordinators listen promiscuously (a radio tap, before
  receive filters) and keep a neighbour table of recently-heard
  platoons.  Listening pre-filter is deliberate: discovery is the trust
  bootstrap, which is exactly the surface the cross-platoon Sybil
  attack exploits.
* **Coordination**: with ``merge_policy="auto"``, a rear leader that
  sees a same-lane platoon ahead within ``merge_range`` starts the
  existing leader-to-leader merge negotiation
  (:meth:`repro.platoon.maneuvers.LeaderLogic.request_merge`).

The coordinator goes quiescent once its vehicle stops being a leader
(e.g. after committing a merge), so absorbed platoons stop announcing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.messages import ManeuverMessage, ManeuverType, Message

if TYPE_CHECKING:
    from repro.core.scenario import Scenario
    from repro.highway.builder import PlatoonHandle

# A neighbour unheard for this many announce intervals is considered gone.
STALE_INTERVALS = 3.0
# Minimum time between merge requests from one coordinator.
MERGE_COOLDOWN = 10.0


class HighwayCoordinator:
    """Per-leader inter-platoon protocol endpoint."""

    def __init__(self, scenario: "Scenario", handle: "PlatoonHandle",
                 index: int) -> None:
        hw = scenario.config.highway
        assert hw is not None
        self.scenario = scenario
        self.handle = handle
        self.hw = hw
        self.leader = handle.leader
        # platoon_id -> latest announcement view of that platoon.
        self.neighbours: dict[str, dict] = {}
        self.announcements_sent = 0
        self.merge_requests_sent = 0
        self._merge_ok_after = 0.0
        self.leader.radio.add_tap(self._on_overheard)
        # Deterministic stagger: no RNG draw, distinct per platoon, never
        # exactly on another platoon's announce boundary.
        stagger = hw.announce_interval * (index + 1) / (len(hw.platoons) + 1)
        scenario.sim.every(hw.announce_interval, self._tick,
                           initial_delay=stagger)

    # -------------------------------------------------------------- reception

    def _on_overheard(self, msg: Message) -> None:
        if not isinstance(msg, ManeuverMessage):
            return
        if msg.maneuver is not ManeuverType.PLATOON_ANNOUNCE:
            return
        own_id = self.leader.state.platoon_id
        if msg.platoon_id is None or msg.platoon_id == own_id:
            return
        first_contact = msg.platoon_id not in self.neighbours
        payload = msg.payload or {}
        self.neighbours[msg.platoon_id] = {
            "leader_id": msg.sender_id,
            "lane": payload.get("lane"),
            "head": payload.get("head"),
            "tail": payload.get("tail"),
            "speed": payload.get("speed"),
            "size": payload.get("size"),
            "heard_at": self.scenario.sim.now,
        }
        if first_contact:
            self.scenario.events.record(
                self.scenario.sim.now, "platoon_discovered",
                self.leader.vehicle_id, neighbour=msg.platoon_id,
                neighbour_leader=msg.sender_id)

    # ------------------------------------------------------------------- tick

    def _tick(self) -> None:
        leader = self.leader
        if not leader.is_leader or leader.leader_logic is None:
            return   # merged away (or split); stay quiet
        self._announce()
        if self.hw.merge_policy == "auto":
            self._consider_merge()

    def _announce(self) -> None:
        leader = self.leader
        logic = leader.leader_logic
        # Platoon extent from the leader's own position plus the members'
        # last claimed beacon positions (communicated state on purpose --
        # ghosts that beacon inflate the advertised platoon).
        positions = [leader.position]
        for member_id in logic.registry.members:
            record = leader.beacon_kb.get(member_id)
            if record is not None:
                positions.append(record.beacon.position)
        msg = ManeuverMessage(
            sender_id=leader.vehicle_id, timestamp=leader.sim.now,
            maneuver=ManeuverType.PLATOON_ANNOUNCE,
            platoon_id=leader.state.platoon_id)
        msg.payload["size"] = logic.registry.size
        msg.payload["lane"] = leader.lane
        msg.payload["head"] = max(positions)
        msg.payload["tail"] = min(positions)
        msg.payload["speed"] = leader.speed
        leader.send(msg)
        self.announcements_sent += 1

    def _consider_merge(self) -> None:
        leader = self.leader
        logic = leader.leader_logic
        now = self.scenario.sim.now
        if now < self._merge_ok_after:
            return
        horizon = STALE_INTERVALS * self.hw.announce_interval
        cfg = self.scenario.config
        for neighbour in self.neighbours.values():
            if now - neighbour["heard_at"] > horizon:
                continue
            if neighbour.get("lane") != leader.lane:
                continue
            tail = neighbour.get("tail")
            size = neighbour.get("size")
            if tail is None or size is None:
                continue
            distance = tail - leader.position
            if not (0.0 < distance <= self.hw.merge_range):
                continue
            if logic.registry.size + size > cfg.max_members:
                continue
            self.merge_requests_sent += 1
            self._merge_ok_after = now + MERGE_COOLDOWN
            logic.request_merge(neighbour["leader_id"])
            return
