"""Construct the highway population inside a scenario.

The builder is the highway counterpart of the single-platoon block in
:class:`repro.core.scenario.Scenario`: it instantiates every platoon
(front-to-back, in spec order) and then the background traffic, in a
**fixed construction order**.  Order is load-bearing: each vehicle draws
its beacon-stagger offset from the shared simulator RNG at construction,
so the construction sequence *is* the random stream -- both kernels (and
any future builder) must create vehicles in exactly this order for
traces to stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.highway.config import HighwayConfig, PlatoonSpec
from repro.platoon.controllers import make_controller
from repro.platoon.dynamics import LongitudinalState, VehicleParams
from repro.platoon.vehicle import Vehicle

if TYPE_CHECKING:
    from repro.core.scenario import Scenario


@dataclass
class PlatoonHandle:
    """One built platoon: id, leader, and member vehicles in road order."""

    platoon_id: str
    spec: PlatoonSpec
    leader: Vehicle
    vehicles: list


@dataclass
class HighwayWorld:
    """Everything the builder created, in construction order."""

    platoons: list
    background: list


def _platoon_spacing(scenario: "Scenario", params: VehicleParams,
                     speed: float) -> float:
    cfg = scenario.config
    if cfg.initial_spacing is not None:
        return max(cfg.initial_spacing, params.length + 2.0)
    equilibrium_gap = make_controller(cfg.cacc_kind).desired_gap(speed)
    return params.length + equilibrium_gap


def build_highway(scenario: "Scenario") -> HighwayWorld:
    """Populate ``scenario`` from its :class:`HighwayConfig`.

    Platoon ``k`` (1-based) gets platoon id ``p{k}`` and vehicle ids
    ``p{k}v{i}`` with ``i=0`` the leader; background vehicles are
    ``bg{i}``.  The first platoon is the primary one the scenario
    aliases point at.
    """
    cfg = scenario.config
    hw = cfg.highway
    assert isinstance(hw, HighwayConfig)

    handles: list[PlatoonHandle] = []
    for k, spec in enumerate(hw.platoons, start=1):
        params = VehicleParams.truck() if spec.trucks else VehicleParams()
        speed = spec.speed if spec.speed is not None else cfg.initial_speed
        vcfg = replace(cfg.vehicle, cacc_kind=cfg.cacc_kind, cruise_speed=speed)
        spacing = _platoon_spacing(scenario, params, speed)
        vehicles: list[Vehicle] = []
        for i in range(spec.n_vehicles):
            vehicle = Vehicle(
                scenario.sim, scenario.world, scenario.channel,
                f"p{k}v{i}", scenario.events,
                initial=LongitudinalState(
                    position=spec.start_position - i * spacing,
                    speed=speed),
                params=params, config=replace(vcfg), lane=spec.lane,
                vlc_channel=scenario.vlc,
                dynamics_factory=scenario._dynamics_factory)
            vehicles.append(vehicle)
            if scenario.authority is not None:
                scenario.authority.register_vehicle(vehicle.vehicle_id)
        leader = vehicles[0]
        platoon_id = f"p{k}"
        logic = leader.make_leader(platoon_id, max_members=cfg.max_members,
                                   max_pending=cfg.max_pending)
        for vehicle in vehicles[1:]:
            vehicle.become_member(platoon_id, leader.vehicle_id)
            logic.registry.members.append(vehicle.vehicle_id)
        handles.append(PlatoonHandle(platoon_id=platoon_id, spec=spec,
                                     leader=leader, vehicles=vehicles))

    background = _build_background(scenario, hw)
    _install_lane_change_driver(scenario, hw, background)
    return HighwayWorld(platoons=handles, background=background)


def _build_background(scenario: "Scenario", hw: HighwayConfig) -> list:
    """Seed free-driving vehicles behind the rearmost platoon.

    Placement and speeds are pure functions of the index (no RNG draws
    beyond the per-vehicle beacon stagger every vehicle makes), so the
    layout is identical across kernels and worker counts.
    """
    cfg = scenario.config
    count = hw.background_count()
    if count == 0:
        return []
    params = VehicleParams()
    rear_anchor = min(spec.start_position for spec in hw.platoons) - 80.0
    per_lane = -(-count // hw.lanes)   # ceil
    gap = max(40.0, hw.road_length / per_lane)
    background: list[Vehicle] = []
    for i in range(count):
        lane = i % hw.lanes
        rank = i // hw.lanes
        # Mild deterministic speed spread so the stream is not lockstep.
        speed = cfg.initial_speed + ((i % 5) - 2) * 0.4
        vcfg = replace(cfg.vehicle, cacc_kind=cfg.cacc_kind, cruise_speed=speed)
        vehicle = Vehicle(
            scenario.sim, scenario.world, scenario.channel,
            f"bg{i}", scenario.events,
            initial=LongitudinalState(
                position=rear_anchor - rank * gap - lane * 11.0,
                speed=speed),
            params=params, config=vcfg, lane=lane,
            vlc_channel=scenario.vlc,
            dynamics_factory=scenario._dynamics_factory)
        background.append(vehicle)
    return background


def _install_lane_change_driver(scenario: "Scenario", hw: HighwayConfig,
                                background: list) -> None:
    """Scripted round-robin lane changes for background vehicles.

    Each tick moves the next background vehicle one lane over, if the
    target lane has room.  This keeps lane membership dynamic, which is
    exactly what invalidates the vector kernel's cached predecessor map
    (see :meth:`repro.platoon.world.World.notify_lane_change`).
    """
    if hw.lane_change_interval <= 0 or hw.lanes < 2 or not background:
        return
    state = {"next": 0}

    def _tick() -> None:
        vehicle = background[state["next"] % len(background)]
        state["next"] += 1
        target = (vehicle.lane + 1) % hw.lanes
        for other in scenario.world.vehicles_in_lane(target):
            if abs(other.position - vehicle.position) < 30.0:
                return   # not safe; try the next vehicle next tick
        vehicle.change_lane(target, reason="scripted")

    scenario.sim.every(hw.lane_change_interval, _tick,
                       initial_delay=hw.lane_change_interval)
