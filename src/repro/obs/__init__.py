"""Structured observability: traces, metrics registry, profiling spans.

``repro.obs`` is the observability substrate threaded through the
simulator, platoon, defences and campaign runner:

* :mod:`repro.obs.registry` -- a process-local
  :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges and
  timers, with mergeable snapshots so campaign workers ship their
  numbers back to the parent for cross-pool aggregation.
* :mod:`repro.obs.trace` -- persistent, schema-versioned JSONL episode
  traces (event log + periodic channel/MAC/platoon samples), one file
  per campaign unit, named by the unit's content hash and byte-stable
  for a fixed seed.

The companion analysis tool lives in :mod:`repro.analysis.tracediff`.
"""

from repro.obs.registry import (
    MetricsRegistry,
    format_snapshot,
    get_registry,
    inc,
    isolated_registry,
    observe,
    profiling_enabled,
    set_gauge,
    set_profiling,
    span,
    timed,
)
from repro.obs.trace import (
    DEFAULT_SAMPLE_PERIOD,
    SCHEMA_VERSION,
    TRACE_FORMAT,
    TraceRecorder,
    load_trace,
    trace_body_bytes,
    trace_filename,
    write_trace,
)

__all__ = [
    "DEFAULT_SAMPLE_PERIOD",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "TRACE_FORMAT",
    "TraceRecorder",
    "format_snapshot",
    "get_registry",
    "inc",
    "isolated_registry",
    "load_trace",
    "observe",
    "profiling_enabled",
    "set_gauge",
    "set_profiling",
    "span",
    "timed",
    "trace_body_bytes",
    "trace_filename",
    "write_trace",
]
