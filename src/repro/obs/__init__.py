"""Structured observability: traces, metrics registry, profiling spans.

``repro.obs`` is the observability substrate threaded through the
simulator, platoon, defences and campaign runner:

* :mod:`repro.obs.registry` -- a process-local
  :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges and
  timers, with mergeable snapshots so campaign workers ship their
  numbers back to the parent for cross-pool aggregation.
* :mod:`repro.obs.trace` -- persistent, schema-versioned JSONL episode
  traces (event log + periodic channel/MAC/platoon samples), one file
  per campaign unit, named by the unit's content hash and byte-stable
  for a fixed seed.
* :mod:`repro.obs.telemetry` -- the structured run-event bus: typed
  progress events from the campaign runner/sweep engine to pluggable
  sinks (live stderr progress, a ``run-log.jsonl`` stream), with a
  canonicalisation helper that makes run logs byte-comparable across
  worker counts.
* :mod:`repro.obs.history` -- the persistent benchmark-history store:
  schema-versioned ``platoonsec-bench/1`` records (git SHA, seeds,
  per-phase timings, headline metrics, registry snapshots) appended to
  ``BENCH_history.jsonl``, plus the tolerance-gated record comparison
  behind the ``bench-compare`` CLI.
* :mod:`repro.obs.report` -- self-contained HTML campaign/sweep reports
  (outcome grids, inline-SVG dose-response curves, per-unit timing,
  cache summaries; no external assets).

The companion analysis tool lives in :mod:`repro.analysis.tracediff`.
"""

from repro.obs.registry import (
    MetricsRegistry,
    format_snapshot,
    get_registry,
    inc,
    isolated_registry,
    observe,
    profiling_enabled,
    set_gauge,
    set_profiling,
    span,
    timed,
)
from repro.obs.trace import (
    DEFAULT_SAMPLE_PERIOD,
    SCHEMA_VERSION,
    TRACE_FORMAT,
    TraceRecorder,
    load_trace,
    trace_body_bytes,
    trace_filename,
    write_trace,
)
from repro.obs.telemetry import (
    EVENT_KINDS,
    JsonlRunLogSink,
    ProgressSink,
    RecordingSink,
    TelemetryBus,
    TelemetryEvent,
    TelemetrySink,
    canonical_events,
    canonical_run_log_bytes,
    load_run_log,
)
from repro.obs.history import (
    HISTORY_FORMAT,
    append_history,
    compare_records,
    load_history,
    load_record,
    make_bench_record,
)
from repro.obs.report import (
    campaign_report,
    svg_line_chart,
    sweep_report,
    write_report,
)

__all__ = [
    "DEFAULT_SAMPLE_PERIOD",
    "EVENT_KINDS",
    "HISTORY_FORMAT",
    "JsonlRunLogSink",
    "MetricsRegistry",
    "ProgressSink",
    "RecordingSink",
    "SCHEMA_VERSION",
    "TRACE_FORMAT",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetrySink",
    "TraceRecorder",
    "append_history",
    "campaign_report",
    "canonical_events",
    "canonical_run_log_bytes",
    "compare_records",
    "load_history",
    "load_record",
    "load_run_log",
    "make_bench_record",
    "svg_line_chart",
    "sweep_report",
    "write_report",
    "format_snapshot",
    "get_registry",
    "inc",
    "isolated_registry",
    "load_trace",
    "observe",
    "profiling_enabled",
    "set_gauge",
    "set_profiling",
    "span",
    "timed",
    "trace_body_bytes",
    "trace_filename",
    "write_trace",
]
