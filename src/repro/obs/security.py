"""Security-verdict telemetry: every detector decision as an observable.

The paper's open-challenges section notes that platoon defences are
evaluated by attack *impact* and almost never by detection *quality* --
a defence that silently passes forged beacons scores the same as one
that flags them, as long as the platoon survives.  This module closes
that blind spot: every accept/flag/drop decision a defence mechanism
makes becomes a typed :class:`DetectionEvent`, and a per-episode
:class:`DetectionLedger` aggregates them into detection-quality metrics
(flag rate, TPR/FPR against ground-truth attack provenance,
time-to-first-flag, missed injections) that ride the episode record,
the run log and the HTML report.

Verdict semantics
-----------------
``accept``
    the mechanism examined a message/claim and passed it through;
``flag``
    the mechanism raised an alarm without blocking anything (VPD
    anomaly emissions, trust expulsions, fusion-anomaly detections);
``drop``
    the mechanism blocked the message/claim (stale beacon rejected,
    bad signature, unwitnessed join refused).

``flag`` and ``drop`` both count as *flagged* for the quality metrics:
either way the defence noticed.

Ground truth
------------
The ``tainted`` bit on each event is attack provenance, derived from the
scenario's ``tainted_identities`` set (attacks register the identities
whose traffic they forge, replay or spoof; detectors never read it).
True-positive rate is flagged-tainted over all tainted verdicts;
false-positive rate is flagged-clean over all clean verdicts; a *missed
injection* is a tainted identity a mechanism observed but never flagged.

Determinism
-----------
Everything here is derived from simulator state only (simulation time,
message identities) -- no wall clocks, no pids -- so ledgers, their
summaries and the trace verdict records are byte-identical across
kernels, worker counts and store backends, the same contract the trace
layer pins for episode bodies.  The ledger's aggregate counts cover
*every* decision; the per-event retention for the trace is capped at
:data:`TRACE_VERDICT_CAP` records per (mechanism, verdict) pair --
deterministically the first N in simulation order -- so a 90 s episode
with ~50k accept decisions still traces in the tens of kilobytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

#: Verdict kinds, in canonical order.
VERDICTS = ("accept", "flag", "drop")

#: Schema tag for ledger summaries embedded in episode records.
DETECTION_SCHEMA = 1

#: Most individual verdict records retained for the episode trace per
#: (mechanism, verdict) pair.  Aggregate counts are never capped.
TRACE_VERDICT_CAP = 50

#: Most flag timestamps retained per mechanism for report timelines.
FLAG_TIMES_CAP = 64


@dataclass(frozen=True)
class DetectionEvent:
    """One defence decision: who judged whom, how, and why.

    ``observer`` is the vehicle (or infrastructure node) that made the
    decision, ``subject`` the identity being judged -- usually a message
    sender, sometimes the observer itself (onboard self-checks).
    ``tainted`` is ground-truth attack provenance for the subject at
    emission time, never the detector's own opinion.
    """

    t: float
    mechanism: str
    verdict: str
    reason: str
    observer: str
    subject: str
    message_kind: Optional[str] = None
    tainted: bool = False

    def to_record(self) -> dict:
        """The trace body record (``"type": "verdict"``)."""
        return {"t": self.t, "type": "verdict",
                "mechanism": self.mechanism, "verdict": self.verdict,
                "reason": self.reason, "observer": self.observer,
                "subject": self.subject, "message_kind": self.message_kind,
                "tainted": self.tainted}


class _MechanismTally:
    """Running aggregates for one mechanism (internal)."""

    __slots__ = ("verdicts", "accepts", "flags", "drops", "tainted",
                 "tainted_flagged", "clean_flagged", "first_flag",
                 "reasons", "tainted_seen", "tainted_hit", "flag_times")

    def __init__(self) -> None:
        self.verdicts = 0
        self.accepts = 0
        self.flags = 0
        self.drops = 0
        self.tainted = 0
        self.tainted_flagged = 0
        self.clean_flagged = 0
        self.first_flag: Optional[float] = None
        self.reasons: Dict[str, int] = {}
        self.tainted_seen: Set[str] = set()
        self.tainted_hit: Set[str] = set()
        self.flag_times: List[float] = []


def _rate(part: int, whole: int) -> Optional[float]:
    return round(part / whole, 6) if whole else None


class DetectionLedger:
    """Per-episode aggregation of every defence verdict.

    Defences call :meth:`record` (via ``Defense.verdict``) for each
    decision; the ledger keeps complete per-mechanism counts plus a
    bounded sample of individual events for the trace, and renders the
    detection-quality summary that lands in ``ScenarioMetrics`` and the
    episode record.
    """

    def __init__(self) -> None:
        self._mechanisms: Dict[str, _MechanismTally] = {}
        self._trace_events: List[DetectionEvent] = []
        self._trace_counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------ recording

    def record(self, t: float, mechanism: str, verdict: str, reason: str,
               observer: str, subject: str,
               message_kind: Optional[str] = None,
               tainted: bool = False) -> DetectionEvent:
        """Fold one decision into the ledger; returns the typed event."""
        if verdict not in VERDICTS:
            raise ValueError(f"unknown verdict {verdict!r}; expected one "
                             f"of {VERDICTS}")
        event = DetectionEvent(t=t, mechanism=mechanism, verdict=verdict,
                               reason=reason, observer=observer,
                               subject=subject, message_kind=message_kind,
                               tainted=bool(tainted))
        tally = self._mechanisms.get(mechanism)
        if tally is None:
            tally = self._mechanisms[mechanism] = _MechanismTally()
        tally.verdicts += 1
        flagged = verdict != "accept"
        if verdict == "accept":
            tally.accepts += 1
        elif verdict == "flag":
            tally.flags += 1
        else:
            tally.drops += 1
        if event.tainted:
            tally.tainted += 1
            tally.tainted_seen.add(subject)
            if flagged:
                tally.tainted_flagged += 1
                tally.tainted_hit.add(subject)
        elif flagged:
            tally.clean_flagged += 1
        if flagged:
            if tally.first_flag is None:
                tally.first_flag = t
            if len(tally.flag_times) < FLAG_TIMES_CAP:
                tally.flag_times.append(t)
        tally.reasons[reason] = tally.reasons.get(reason, 0) + 1
        slot = (mechanism, verdict)
        kept = self._trace_counts.get(slot, 0)
        if kept < TRACE_VERDICT_CAP:
            self._trace_counts[slot] = kept + 1
            self._trace_events.append(event)
        return event

    # ------------------------------------------------------------- reading

    @property
    def total_verdicts(self) -> int:
        return sum(t.verdicts for t in self._mechanisms.values())

    def mechanisms(self) -> list:
        """Mechanism keys that produced at least one verdict, sorted."""
        return sorted(self._mechanisms)

    def trace_records(self) -> list[dict]:
        """The retained verdict records, in emission order."""
        return [event.to_record() for event in self._trace_events]

    def summary(self) -> dict:
        """Plain-JSON detection-quality view (the episode-record field).

        Per mechanism and in total: verdict counts by kind, tainted
        splits, flag rate, TPR/FPR (``None`` without tainted/clean
        traffic to score against), time-to-first-flag (simulation
        seconds, ``None`` when nothing was flagged), missed-injection
        count and the per-reason breakdown.  Keys are sorted so the
        summary is byte-stable under canonical JSON encoding.
        """
        mechanisms: Dict[str, dict] = {}
        totals = _MechanismTally()
        all_tainted_seen: Set[str] = set()
        all_tainted_hit: Set[str] = set()
        for name in sorted(self._mechanisms):
            tally = self._mechanisms[name]
            mechanisms[name] = self._tally_dict(tally)
            totals.verdicts += tally.verdicts
            totals.accepts += tally.accepts
            totals.flags += tally.flags
            totals.drops += tally.drops
            totals.tainted += tally.tainted
            totals.tainted_flagged += tally.tainted_flagged
            totals.clean_flagged += tally.clean_flagged
            if tally.first_flag is not None and (
                    totals.first_flag is None
                    or tally.first_flag < totals.first_flag):
                totals.first_flag = tally.first_flag
            all_tainted_seen |= tally.tainted_seen
            all_tainted_hit |= tally.tainted_hit
        # A globally missed injection: some mechanism saw the tainted
        # identity's traffic but *no* mechanism ever flagged it.
        totals.tainted_seen = all_tainted_seen
        totals.tainted_hit = all_tainted_hit
        out = self._tally_dict(totals, with_details=False)
        return {"schema": DETECTION_SCHEMA, "mechanisms": mechanisms,
                "totals": out}

    @staticmethod
    def _tally_dict(tally: _MechanismTally,
                    with_details: bool = True) -> dict:
        flagged = tally.flags + tally.drops
        clean = tally.verdicts - tally.tainted
        out = {
            "verdicts": tally.verdicts,
            "accepts": tally.accepts,
            "flags": tally.flags,
            "drops": tally.drops,
            "flagged": flagged,
            "tainted": tally.tainted,
            "tainted_flagged": tally.tainted_flagged,
            "clean_flagged": tally.clean_flagged,
            "flag_rate": (round(flagged / tally.verdicts, 6)
                          if tally.verdicts else 0.0),
            "tpr": _rate(tally.tainted_flagged, tally.tainted),
            "fpr": _rate(tally.clean_flagged, clean),
            "time_to_first_flag": tally.first_flag,
            "missed_injections": len(tally.tainted_seen - tally.tainted_hit),
        }
        if with_details:
            out["reasons"] = {reason: tally.reasons[reason]
                              for reason in sorted(tally.reasons)}
            out["flag_times"] = list(tally.flag_times)
        return out


def summarize_trace_verdicts(records: list) -> DetectionLedger:
    """Rebuild a ledger from a trace body's ``"verdict"`` records.

    Only the *retained* events are available in a trace (the per-pair
    cap applies), so the rebuilt ledger is a lower bound on the episode
    ledger -- exact whenever no mechanism exceeded the cap.  The
    ``platoonsec detections`` CLI uses this to summarise a trace file.
    """
    ledger = DetectionLedger()
    for record in records:
        if record.get("type") != "verdict":
            continue
        ledger.record(t=float(record["t"]),
                      mechanism=str(record["mechanism"]),
                      verdict=str(record["verdict"]),
                      reason=str(record["reason"]),
                      observer=str(record.get("observer", "?")),
                      subject=str(record.get("subject", "?")),
                      message_kind=record.get("message_kind"),
                      tainted=bool(record.get("tainted", False)))
    return ledger
