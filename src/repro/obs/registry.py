"""Process-local metrics registry: counters, gauges and timers.

Every serving stack carries a counters/timers substrate; this is ours.
Hot paths (the channel, the MAC, the simulator loop, defences) increment
named counters through the module-level helpers; profiling spans wrap the
expensive phases.  The registry is *process-local*: campaign workers run
each episode against a fresh isolated registry (see
:func:`isolated_registry`), snapshot it, and ship the snapshot back to
the parent inside the episode record, where the
:class:`~repro.core.runner.CampaignRunner` aggregates snapshots across
the pool -- counters sum, timers merge -- into its run report.

Snapshots are plain-JSON dicts so they survive pickling, the episode
disk cache, and cross-process transport unchanged::

    {"counters": {...}, "gauges": {...},
     "timers": {name: {"total": s, "count": n, "max": s}}}

Profiling (per-callback timing in the simulator loop) is off by default
because it costs a clock read per event; enable it with
:func:`set_profiling` (the CLI's ``--profile`` flag does).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

SNAPSHOT_VERSION = 1


class MetricsRegistry:
    """Named counters, gauges and timers with mergeable snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # timer name -> [total_seconds, count, max_seconds]
        self._timers: Dict[str, list] = {}
        self._span_stack: list[str] = []

    # ----------------------------------------------------------- counters

    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    # ------------------------------------------------------------- gauges

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    # ------------------------------------------------------------- timers

    def observe(self, name: str, seconds: float) -> None:
        """Record one timed interval under ``name``."""
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = [seconds, 1, seconds]
        else:
            entry[0] += seconds
            entry[1] += 1
            if seconds > entry[2]:
                entry[2] = seconds

    def timer_total(self, name: str) -> float:
        entry = self._timers.get(name)
        return entry[0] if entry else 0.0

    def timer_count(self, name: str) -> int:
        entry = self._timers.get(name)
        return entry[1] if entry else 0

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Time a block and record it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Hierarchical timing: nested spans record dotted paths.

        ``span("run")`` containing ``span("compute")`` records timers
        ``run`` and ``run.compute``, so a profile reads as a call tree.
        """
        self._span_stack.append(name)
        full = ".".join(self._span_stack)
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(full, time.perf_counter() - start)
            self._span_stack.pop()

    # ---------------------------------------------------- snapshot / merge

    def snapshot(self) -> dict:
        """Plain-JSON view of everything recorded so far."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "timers": {name: {"total": entry[0], "count": entry[1],
                              "max": entry[2]}
                       for name, entry in self._timers.items()},
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and timer totals/counts *sum*; timer maxima and gauges
        take the max (gauges are last-known-value locally, but across
        processes there is no ordering, so max is the honest merge).
        """
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            current = self._gauges.get(name)
            self._gauges[name] = value if current is None \
                else max(current, value)
        for name, stat in snap.get("timers", {}).items():
            entry = self._timers.setdefault(name, [0.0, 0, 0.0])
            entry[0] += stat["total"]
            entry[1] += stat["count"]
            if stat["max"] > entry[2]:
                entry[2] = stat["max"]

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._span_stack.clear()


# --------------------------------------------------------------------------
# Process-global active registry + module-level hot-path helpers
# --------------------------------------------------------------------------

_active = MetricsRegistry()
_profiling = False


def get_registry() -> MetricsRegistry:
    """The currently active process-local registry."""
    return _active


@contextmanager
def isolated_registry() -> Iterator[MetricsRegistry]:
    """Swap in a fresh registry for the duration of the block.

    Campaign workers run each episode inside one of these so per-episode
    observability is captured cleanly (and snapshotted into the episode
    record) without polluting -- or being polluted by -- whatever else
    ran in this process.
    """
    global _active
    previous = _active
    fresh = MetricsRegistry()
    _active = fresh
    try:
        yield fresh
    finally:
        _active = previous


def set_profiling(enabled: bool) -> None:
    """Globally enable/disable per-callback profiling in hot loops."""
    global _profiling
    _profiling = bool(enabled)


def profiling_enabled() -> bool:
    return _profiling


def inc(name: str, amount: float = 1) -> None:
    _active.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    _active.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    _active.observe(name, seconds)


def timed(name: str):
    return _active.timed(name)


def span(name: str):
    return _active.span(name)


def format_snapshot(snap: dict, title: str = "observability") -> str:
    """Human-readable counters/timers table for the CLI's ``--profile``."""
    from repro.analysis.tables import format_table

    counter_rows = [[name, round(value, 6) if isinstance(value, float)
                     else value]
                    for name, value in sorted(snap.get("counters", {}).items())]
    timer_rows = [[name, stat["count"], round(stat["total"], 4),
                   round(stat["total"] / stat["count"], 6) if stat["count"]
                   else 0.0, round(stat["max"], 6)]
                  for name, stat in sorted(snap.get("timers", {}).items())]
    parts = []
    if counter_rows:
        parts.append(format_table(["counter", "value"], counter_rows,
                                  title=f"{title}: counters"))
    if timer_rows:
        parts.append(format_table(
            ["timer", "count", "total [s]", "mean [s]", "max [s]"],
            timer_rows, title=f"{title}: timers"))
    if not parts:
        return f"{title}: (empty)"
    return "\n".join(parts)
