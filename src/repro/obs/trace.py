"""Persistent episode traces: schema-versioned JSONL, one file per unit.

The paper's threat narratives (Table II) are claims about *sequences of
events* -- replay-induced oscillation, Sybil ghost joins, jamming-driven
disbands.  In-memory, those sequences live in the episode's
:class:`~repro.events.EventLog` and die with it; a surprising campaign
verdict cannot be inspected after the fact.  A trace fixes that: the
full event log plus periodic channel/MAC/platoon/controller samples,
streamed to one compact JSONL file per campaign unit, named by the
unit's content hash.

File layout
-----------
Line 1 is a header object::

    {"format": "platoonsec-trace/1", "schema_version": 1,
     "spec_key": ..., "threat": ..., "variant": ..., "role": ...,
     "mechanism": ..., "seed": ..., "config_hash": ...,
     "sample_period": ..., "n_records": N}

Every subsequent line (the *body*) is one record, sorted by simulation
time, either an event::

    {"t": 11.0, "type": "event", "kind": "platoon_disband",
     "source": "veh1", "data": {"reason": "comm_loss"}}

or a periodic sample::

    {"t": 10.0, "type": "sample", "channel": {...}, "mac": {...},
     "platoon": {...}, "controller": {...}}

Everything in the body is derived from simulator state only -- no wall
clocks, no pids -- so for a fixed seed the body is *byte-identical*
across runs, worker counts and processes.  That is what turns
"serial vs parallel bit-identical" from an opaque assert into a
byte-level diff (see :mod:`repro.analysis.tracediff`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:
    from repro.core.scenario import Scenario

TRACE_FORMAT = "platoonsec-trace/1"
# 1: events + samples; 2: adds "verdict" records (security-verdict
# stream from repro.obs.security, capped per (mechanism, verdict)).
SCHEMA_VERSION = 2

#: Default sampling period [simulated seconds]; coarse enough to keep a
#: 90 s episode's trace in the tens of kilobytes.
DEFAULT_SAMPLE_PERIOD = 1.0


def trace_filename(spec_key: str) -> str:
    """Canonical trace filename for a campaign unit's content hash."""
    return f"{spec_key}.trace.jsonl"


def _dumps(obj: dict) -> str:
    """Canonical, compact, key-sorted JSON -- byte-stable by seed."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TraceRecorder:
    """Samples a running scenario; pairs with :func:`write_trace`.

    Attach before ``scenario.run()``: installs a periodic sampler on the
    scenario's simulator that captures channel counters, aggregate MAC
    state, platoon membership health and leader/controller state at each
    tick.  After the run, :meth:`records` merges the samples with the
    scenario's event log into one time-sorted record list.
    """

    def __init__(self, scenario: "Scenario",
                 sample_period: float = DEFAULT_SAMPLE_PERIOD) -> None:
        self.scenario = scenario
        self.sample_period = sample_period
        self._samples: list[dict] = []
        self._proc = scenario.sim.every(sample_period, self._sample,
                                        initial_delay=sample_period)

    def _sample(self) -> None:
        scenario = self.scenario
        now = scenario.sim.now
        ch = scenario.channel.stats
        mac = {"enqueued": 0, "sent": 0, "dropped": 0, "backoffs": 0}
        degraded = members = fragments = 0
        platoon_ids = set()
        for vehicle in scenario.platoon_vehicles:
            stats = vehicle.radio.mac.stats
            mac["enqueued"] += stats.enqueued
            mac["sent"] += stats.sent
            mac["dropped"] += (stats.dropped_queue_full
                               + stats.dropped_retry_limit)
            mac["backoffs"] += stats.total_backoffs
            if vehicle.degraded:
                degraded += 1
            if vehicle.state.in_platoon:
                members += 1
                if vehicle.state.platoon_id is not None:
                    platoon_ids.add(vehicle.state.platoon_id)
        fragments = len(platoon_ids)
        leader = scenario.leader
        gaps = [scenario.world.true_gap(v)
                for v in scenario.platoon_vehicles[1:]]
        gaps = [g for g in gaps if g is not None]
        self._samples.append({
            "t": now,
            "type": "sample",
            "channel": {"tx": ch.transmissions,
                        "delivered": ch.delivered,
                        "lost_noise": ch.lost_noise,
                        "lost_interference": ch.lost_interference,
                        "out_of_range": ch.out_of_range},
            "mac": mac,
            "platoon": {"in_platoon": members,
                        "degraded": degraded,
                        "fragments": fragments},
            "controller": {"leader_speed": leader.speed,
                           "leader_accel": leader.acceleration,
                           "mean_gap": (sum(gaps) / len(gaps)) if gaps
                           else None,
                           "min_gap": min(gaps) if gaps else None},
        })

    def stop(self) -> None:
        self._proc.stop()

    def records(self) -> list[dict]:
        """Events + verdicts + samples, stably sorted by simulation time.

        Verdict records come from the scenario's detection ledger (the
        retained first-N per (mechanism, verdict) pair); the stable sort
        keeps the within-timestamp order events < verdicts < samples.
        """
        merged = [
            {"t": e.time, "type": "event", "kind": e.kind,
             "source": e.source, "data": dict(e.data)}
            for e in self.scenario.events
        ]
        merged.extend(self.scenario.detection_ledger.trace_records())
        merged.extend(self._samples)
        merged.sort(key=lambda record: record["t"])
        return merged


def write_trace(path: Union[str, Path], records: list[dict],
                meta: Optional[dict] = None,
                sample_period: float = DEFAULT_SAMPLE_PERIOD) -> Path:
    """Write a schema-versioned JSONL trace file.

    ``meta`` supplies the unit identity fields for the header
    (spec_key/threat/variant/role/mechanism/seed/config_hash); absent
    keys are written as ``None`` so headers are structurally uniform.
    """
    meta = meta or {}
    header = {
        "format": TRACE_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "spec_key": meta.get("spec_key"),
        "threat": meta.get("threat"),
        "variant": meta.get("variant"),
        "role": meta.get("role"),
        "mechanism": meta.get("mechanism"),
        "seed": meta.get("seed"),
        "config_hash": meta.get("config_hash"),
        "sample_period": sample_period,
        "n_records": len(records),
    }
    path = Path(path)
    lines = [_dumps(header)]
    lines.extend(_dumps(record) for record in records)
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: Union[str, Path]) -> tuple[dict, list[dict]]:
    """Read a trace back as ``(header, records)``.

    Unknown formats raise ``ValueError`` rather than guessing; a record
    count mismatching the header means a truncated write and also raises.
    """
    text = Path(path).read_text()
    lines = [line for line in text.splitlines() if line]
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"unsupported trace format: {header.get('format')!r}")
    records = [json.loads(line) for line in lines[1:]]
    if header.get("n_records") != len(records):
        raise ValueError(
            f"truncated trace {path}: header promises "
            f"{header.get('n_records')} records, found {len(records)}")
    return header, records


def trace_body_bytes(path: Union[str, Path]) -> bytes:
    """The body of a trace file (everything after the header line).

    This is the unit of the byte-identity guarantee: two runs of the
    same episode at the same seed produce equal bodies regardless of
    worker count, process or wall clock.
    """
    data = Path(path).read_bytes()
    newline = data.index(b"\n")
    return data[newline + 1:]
