"""Persistent benchmark history: ``platoonsec-bench/1`` records.

Every bench and campaign run can append one schema-versioned record --
git SHA, root seed, worker count, per-phase timings from the
:class:`~repro.core.runner.RunReport`, headline metrics and the
aggregated :class:`~repro.obs.registry.MetricsRegistry` snapshot -- to a
JSONL history file (``BENCH_history.jsonl`` by convention).  The history
is the longitudinal complement to per-episode traces: traces answer
"what happened inside this episode", the history answers "how has this
campaign's cost and outcome moved across commits".

:func:`compare_records` diffs two records under explicit tolerances and
is what the ``bench-compare`` CLI (and CI's golden-record gate) runs:

* *wall-time drift* gates only regressions -- a record that got slower
  by more than ``wall_tolerance`` (relative) fails, a faster one never
  does;
* *metric drift* gates both directions -- campaign metrics are
  deterministic for a fixed seed, so any movement beyond
  ``metric_tolerance`` is a reproduction change, not noise;
* *counters* (frames sent, messages dropped, ...) are gated like
  metrics, but only when both records computed the same number of
  units -- a warm-cache run computes fewer episodes and legitimately
  counts less.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

HISTORY_FORMAT = "platoonsec-bench/1"

#: Below this magnitude a reference value counts as zero and drift is
#: measured absolutely instead of relatively.
_EPS = 1e-9


def current_git_sha(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The repo's HEAD SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=str(cwd) if cwd is not None else None)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def make_bench_record(label: str, report=None, *,
                      metrics: Optional[Dict[str, float]] = None,
                      root_seed: Optional[int] = None,
                      git_sha: Optional[str] = None,
                      created: Optional[float] = None) -> dict:
    """Build one ``platoonsec-bench/1`` record.

    ``report`` is a :class:`~repro.core.runner.RunReport` (or ``None``
    for table-only bench records); ``metrics`` is the flat name -> float
    headline-metric mapping the drift gate compares.
    """
    record = {
        "format": HISTORY_FORMAT,
        "label": str(label),
        "created": round(float(created if created is not None
                               else time.time()), 3),
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "root_seed": root_seed,
        "workers": None,
        "units": 0,
        "computed": 0,
        "cache_hits": 0,
        "wall_time": 0.0,
        "episode_time": 0.0,
        "phases": {},
        "metrics": {name: float(value)
                    for name, value in (metrics or {}).items()},
        "counters": {},
        "timers": {},
    }
    if report is not None:
        record.update({
            "workers": report.workers,
            "units": len(report.units),
            "computed": report.computed,
            "cache_hits": report.cache_hits,
            "wall_time": round(report.wall_time, 6),
            "episode_time": round(report.episode_time, 6),
            "phases": {name: round(seconds, 6)
                       for name, seconds in report.phases.items()},
            "counters": dict(report.counters),
            "timers": {name: dict(stat)
                       for name, stat in report.timers.items()},
        })
    return record


def validate_record(record: Any, where: str = "record") -> dict:
    """Reject anything that is not a ``platoonsec-bench/1`` object."""
    if not isinstance(record, dict):
        raise ValueError(f"{where}: expected a JSON object, got "
                         f"{type(record).__name__}")
    if record.get("format") != HISTORY_FORMAT:
        raise ValueError(f"{where}: unsupported bench record format "
                         f"{record.get('format')!r} (expected "
                         f"{HISTORY_FORMAT!r})")
    if not isinstance(record.get("label"), str):
        raise ValueError(f"{where}: bench record has no string 'label'")
    return record


def append_history(path: Union[str, Path], record: dict) -> Path:
    """Append one record to a JSONL history file (created on demand)."""
    validate_record(record)
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    except OSError as exc:
        raise ValueError(f"bench history {path} is not writable: "
                         f"{exc}") from None
    return path


def load_history(path: Union[str, Path]) -> list[dict]:
    """Read a history file back, oldest first; bad lines raise."""
    records: list[dict] = []
    for i, line in enumerate(Path(path).read_text().splitlines()):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: not JSON: {exc}") from None
        records.append(validate_record(record, where=f"{path}:{i + 1}"))
    return records


def load_record(path: Union[str, Path]) -> dict:
    """Read one standalone bench-record JSON file (e.g. a CI golden)."""
    data = json.loads(Path(path).read_text())
    return validate_record(data, where=str(path))


# --------------------------------------------------------------------------
# Comparison / regression gating
# --------------------------------------------------------------------------

@dataclass
class BenchComparison:
    """Outcome of diffing two bench records under tolerances."""

    old_label: str
    new_label: str
    wall_tolerance: float
    metric_tolerance: float
    rows: List[list] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def format(self) -> str:
        from repro.analysis.tables import format_table

        parts = [format_table(
            ["quantity", "old", "new", "drift", "verdict"], self.rows,
            title=f"bench-compare: {self.old_label!r} -> "
                  f"{self.new_label!r}")]
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.problems:
            parts.append("DIVERGENCE:")
            parts.extend(f"  - {problem}" for problem in self.problems)
        else:
            parts.append(f"no divergence beyond tolerance "
                         f"(wall ±{self.wall_tolerance:g} rel, "
                         f"metrics ±{self.metric_tolerance:g} rel)")
        return "\n".join(parts)


def _drift(old: float, new: float) -> float:
    """Relative drift where the reference allows it, absolute otherwise."""
    if abs(old) < _EPS:
        return abs(new - old)
    return (new - old) / abs(old)


def _fmt(value: float) -> float:
    return round(float(value), 6)


def compare_records(old: dict, new: dict, *,
                    wall_tolerance: float = 1.0,
                    metric_tolerance: float = 0.05,
                    expect_speedup: Optional[float] = None) -> BenchComparison:
    """Diff two bench records; tolerance-exceeding drift is a problem.

    See the module docstring for the gating rules.  Tolerances are
    relative: ``wall_tolerance=1.0`` allows the new run to take up to
    twice as long, ``metric_tolerance=0.05`` allows metrics to move 5 %.

    ``expect_speedup`` turns the wall comparison into a *performance
    gate*: the new record must be at least that factor faster than the
    old one (``old_wall / new_wall >= expect_speedup``), otherwise the
    comparison fails.  This is how the kernel bench asserts the vector
    kernel's advantage over the scalar reference instead of merely
    tolerating it.
    """
    validate_record(old, "old record")
    validate_record(new, "new record")
    comparison = BenchComparison(old_label=old["label"],
                                 new_label=new["label"],
                                 wall_tolerance=wall_tolerance,
                                 metric_tolerance=metric_tolerance)
    if old["label"] != new["label"]:
        comparison.problems.append(
            f"label mismatch: comparing {old['label']!r} against "
            f"{new['label']!r} -- these are different campaigns")

    old_wall = float(old.get("wall_time") or 0.0)
    new_wall = float(new.get("wall_time") or 0.0)
    wall_drift = _drift(old_wall, new_wall)
    wall_bad = old_wall > _EPS and wall_drift > wall_tolerance
    comparison.rows.append(["wall_time [s]", _fmt(old_wall), _fmt(new_wall),
                            f"{wall_drift:+.2f}",
                            "SLOWER" if wall_bad else "ok"])
    if wall_bad:
        comparison.problems.append(
            f"wall_time regressed {old_wall:.3f}s -> {new_wall:.3f}s "
            f"({wall_drift:+.1%} > +{wall_tolerance:.1%} allowed)")
    if expect_speedup is not None:
        speedup = (old_wall / new_wall) if new_wall > _EPS else float("inf")
        fast_enough = speedup >= expect_speedup
        comparison.rows.append(["wall speedup [x]",
                                _fmt(expect_speedup), _fmt(speedup), "-",
                                "ok" if fast_enough else "TOO SLOW"])
        if not fast_enough:
            comparison.problems.append(
                f"expected >= {expect_speedup:g}x wall speedup, measured "
                f"{speedup:.2f}x ({old_wall:.3f}s -> {new_wall:.3f}s)")
        else:
            comparison.notes.append(
                f"wall speedup {speedup:.2f}x meets the "
                f">= {expect_speedup:g}x gate")

    def gate(kind: str, old_map: dict, new_map: dict) -> None:
        for name in sorted(set(old_map) | set(new_map)):
            if name not in new_map:
                comparison.rows.append([f"{kind}:{name}",
                                        _fmt(old_map[name]), "-", "-",
                                        "MISSING"])
                comparison.problems.append(
                    f"{kind} {name!r} present in old record, missing "
                    "from new")
                continue
            if name not in old_map:
                comparison.rows.append([f"{kind}:{name}", "-",
                                        _fmt(new_map[name]), "-", "new"])
                comparison.notes.append(
                    f"{kind} {name!r} is new (not in old record)")
                continue
            o, n = float(old_map[name]), float(new_map[name])
            drift = _drift(o, n)
            bad = abs(drift) > metric_tolerance
            comparison.rows.append([f"{kind}:{name}", _fmt(o), _fmt(n),
                                    f"{drift:+.4f}",
                                    "DRIFT" if bad else "ok"])
            if bad:
                comparison.problems.append(
                    f"{kind} {name!r} drifted {o:.6g} -> {n:.6g} "
                    f"({drift:+.2%} > ±{metric_tolerance:.2%} allowed)")

    gate("metric", old.get("metrics") or {}, new.get("metrics") or {})

    old_counters = old.get("counters") or {}
    new_counters = new.get("counters") or {}
    if old.get("computed") == new.get("computed") \
            and old_counters and new_counters:
        gate("counter", old_counters, new_counters)
    elif old_counters or new_counters:
        comparison.notes.append(
            "counters not gated: records computed different unit counts "
            f"({old.get('computed')} vs {new.get('computed')}), so "
            "counter totals are not comparable")
    return comparison
