"""Self-contained HTML campaign/sweep reports.

One campaign (or sweep) in, one HTML file out: the Table II/III outcome
grids, dose-response curves as inline SVG, the runner's phase-timing
breakdown, a per-unit cache/timing table with links to trace files, and
the cache-hit summary.  *Self-contained* is a hard property: all CSS is
inlined, charts are inline SVG, and nothing references the network --
the file renders identically from a CI artifact tab, an email
attachment or ``file://``.

Entry points: :func:`campaign_report` (catalogue outcomes and/or matrix
cells), :func:`sweep_report` (a :class:`~repro.sweep.engine.SweepResult`)
and :func:`write_report`.  The CLI's ``report`` subcommand is a thin
wrapper over these.
"""

from __future__ import annotations

import html as _html
from pathlib import Path
from typing import Optional, Sequence, Union

REPORT_GENERATOR = "platoonsec report/1"

#: Categorical series palette (colour-blind-safe, no external assets).
_PALETTE = ("#4c78a8", "#f58518", "#54a24b", "#e45756",
            "#72b7b2", "#b279a2", "#9d755d", "#bab0ac")

_STYLE = """
:root { color-scheme: light; }
body { font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a1a; background: #ffffff; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #4c78a8;
     padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .75rem 0; }
caption { caption-side: top; text-align: left; font-weight: 600;
          padding-bottom: .3rem; }
th, td { border: 1px solid #d0d0d0; padding: .3rem .6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f2f4f8; }
tr:nth-child(even) td { background: #fafbfc; }
.confirmed { color: #1a7f37; font-weight: 600; }
.noeffect { color: #b35900; }
.hit { color: #1a7f37; }
.miss { color: #8a6d00; }
svg { background: #ffffff; }
footer { margin-top: 3rem; color: #6a6a6a; font-size: .85rem;
         border-top: 1px solid #d0d0d0; padding-top: .5rem; }
a { color: #2a5db0; }
"""


def _esc(value) -> str:
    return _html.escape(str(value), quote=True)


class RawHtml(str):
    """A table cell that is already trusted markup (e.g. a trace link);
    everything else is escaped."""


def _num(value, digits: int = 3) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{round(value, digits):g}"
    return str(value)


def html_table(headers: Sequence[str], rows: Sequence[Sequence],
               caption: Optional[str] = None) -> str:
    """A plain HTML table; cells may be ``(text, css_class)`` pairs."""
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{_esc(caption)}</caption>")
    parts.append("<thead><tr>"
                 + "".join(f"<th>{_esc(h)}</th>" for h in headers)
                 + "</tr></thead><tbody>")
    for row in rows:
        cells = []
        for cell in row:
            css = None
            if isinstance(cell, tuple) and len(cell) == 2:
                cell, css = cell
            if isinstance(cell, RawHtml):
                raw = str(cell)
            else:
                raw = _esc(cell if isinstance(cell, str) else _num(cell))
            cells.append(f'<td class="{_esc(css)}">{raw}</td>'
                         if css else f"<td>{raw}</td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


# --------------------------------------------------------------------------
# Inline SVG charts
# --------------------------------------------------------------------------

def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def svg_line_chart(xs: Sequence[float], series: dict, *,
                   title: str = "", x_label: str = "", y_label: str = "",
                   width: int = 640, height: int = 300) -> str:
    """An inline SVG line chart: one polyline per named series.

    ``series`` maps name -> y list aligned with ``xs``; ``None`` entries
    break the line.  Non-numeric x values yield an empty string so
    callers can fall back to a table.
    """
    if not xs or not all(isinstance(x, (int, float))
                         and not isinstance(x, bool) for x in xs):
        return ""
    numeric = [y for ys in series.values() for y in ys
               if isinstance(y, (int, float)) and not isinstance(y, bool)]
    if not numeric:
        return ""
    x_lo, x_hi = float(min(xs)), float(max(xs))
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    y_lo, y_hi = float(min(numeric)), float(max(numeric))
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    pad = (y_hi - y_lo) * 0.08
    y_lo, y_hi = y_lo - pad, y_hi + pad

    left, right, top, bottom = 64, 16, 34, 44

    def sx(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * (width - left - right)

    def sy(y: float) -> float:
        return (height - bottom
                - (y - y_lo) / (y_hi - y_lo) * (height - top - bottom))

    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" role="img" '
             f'viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}">']
    if title:
        parts.append(f'<text x="{left}" y="18" font-size="14" '
                     f'font-weight="600">{_esc(title)}</text>')
    # Axes + gridlines + tick labels.
    axis = 'stroke="#888" stroke-width="1"'
    parts.append(f'<line x1="{left}" y1="{top}" x2="{left}" '
                 f'y2="{height - bottom}" {axis}/>')
    parts.append(f'<line x1="{left}" y1="{height - bottom}" '
                 f'x2="{width - right}" y2="{height - bottom}" {axis}/>')
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" '
                     f'x2="{width - right}" y2="{y:.1f}" '
                     f'stroke="#e4e4e4" stroke-width="1"/>')
        parts.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                     f'font-size="11" text-anchor="end">{tick:.3g}</text>')
    for tick in _ticks(x_lo, x_hi):
        x = sx(tick)
        parts.append(f'<text x="{x:.1f}" y="{height - bottom + 16}" '
                     f'font-size="11" text-anchor="middle">'
                     f'{tick:.3g}</text>')
    if x_label:
        parts.append(f'<text x="{(left + width - right) / 2:.1f}" '
                     f'y="{height - 8}" font-size="12" '
                     f'text-anchor="middle">{_esc(x_label)}</text>')
    if y_label:
        parts.append(f'<text x="14" y="{(top + height - bottom) / 2:.1f}" '
                     f'font-size="12" text-anchor="middle" '
                     f'transform="rotate(-90 14 '
                     f'{(top + height - bottom) / 2:.1f})">'
                     f'{_esc(y_label)}</text>')
    # Series polylines + point markers + legend.
    legend_x = left + 8
    for i, (name, ys) in enumerate(series.items()):
        colour = _PALETTE[i % len(_PALETTE)]
        segment: list[str] = []
        segments: list[list[str]] = [segment]
        for x, y in zip(xs, ys):
            if isinstance(y, (int, float)) and not isinstance(y, bool):
                segment.append(f"{sx(float(x)):.1f},{sy(float(y)):.1f}")
            elif segment:
                segment = []
                segments.append(segment)
        for points in segments:
            if len(points) > 1:
                parts.append(f'<polyline fill="none" stroke="{colour}" '
                             f'stroke-width="2" '
                             f'points="{" ".join(points)}"/>')
            for point in points:
                cx, cy = point.split(",")
                parts.append(f'<circle cx="{cx}" cy="{cy}" r="2.5" '
                             f'fill="{colour}"/>')
        parts.append(f'<rect x="{legend_x}" y="{top + 2 + i * 16}" '
                     f'width="10" height="10" fill="{colour}"/>')
        parts.append(f'<text x="{legend_x + 14}" '
                     f'y="{top + 11 + i * 16}" font-size="11">'
                     f'{_esc(name)}</text>')
    parts.append("</svg>")
    return "".join(parts)


# --------------------------------------------------------------------------
# Page assembly
# --------------------------------------------------------------------------

def render_page(title: str, sections: Sequence[tuple[str, str]]) -> str:
    """Assemble a full standalone HTML document from (heading, body)."""
    parts = ["<!doctype html>", '<html lang="en">', "<head>",
             '<meta charset="utf-8">',
             '<meta name="viewport" '
             'content="width=device-width, initial-scale=1">',
             f"<title>{_esc(title)}</title>",
             f"<style>{_STYLE}</style>", "</head>", "<body>",
             f"<h1>{_esc(title)}</h1>"]
    for heading, body in sections:
        parts.append("<section>")
        if heading:
            parts.append(f"<h2>{_esc(heading)}</h2>")
        parts.append(body)
        parts.append("</section>")
    parts.append(f"<footer>generated by {_esc(REPORT_GENERATOR)} &mdash; "
                 "self-contained: no scripts, no network assets.</footer>")
    parts.append("</body></html>")
    return "\n".join(parts)


def _verdict_cell(effect_present: bool) -> tuple:
    return (("CONFIRMED", "confirmed") if effect_present
            else ("no effect", "noeffect"))


def _outcome_section(outcomes) -> tuple[str, str]:
    rows = []
    for o in outcomes:
        rows.append([o.threat_key, o.variant, o.metric_name,
                     _num(o.baseline_value), _num(o.attacked_value),
                     _num(o.impact_ratio, 2),
                     _verdict_cell(o.effect_present)])
    return ("Table II outcomes",
            html_table(["threat", "variant", "metric", "baseline",
                        "attacked", "impact ratio", "effect"], rows))


def _matrix_section(cells) -> tuple[str, str]:
    rows = []
    for c in cells:
        rows.append([c.mechanism_key, c.threat_key, c.metric_name,
                     _num(c.baseline_value), _num(c.attacked_value),
                     _num(c.defended_value), _num(c.mitigation, 2)])
    return ("Table III defence matrix",
            html_table(["mechanism", "threat", "metric", "baseline",
                        "attacked", "defended", "mitigation"], rows))


def _detection_rows(cells) -> list[list]:
    rows = []
    for c in cells:
        mechanisms = (getattr(c, "detection", None) or {}) \
            .get("mechanisms", {})
        for name, tally in mechanisms.items():
            rows.append([c.threat_key, c.mechanism_key, name,
                         tally.get("verdicts", 0), tally.get("flagged", 0),
                         _num(tally.get("flag_rate"), 4),
                         _num(tally.get("tpr"), 4), _num(tally.get("fpr"), 4),
                         _num(tally.get("time_to_first_flag")),
                         tally.get("missed_injections", 0)])
    return rows


def _detection_section(cells) -> list[tuple[str, str]]:
    """Detection-quality grid + per-mechanism flag timelines.

    Built from the defended episode's detection ledger on each matrix
    cell; cells produced before the ledger existed render nothing.
    """
    rows = _detection_rows(cells)
    if not rows:
        return []
    sections = [("Detection quality (defended episodes)",
                 html_table(["threat", "stack", "mechanism", "verdicts",
                             "flagged", "flag rate", "TPR", "FPR",
                             "first flag [s]", "missed"], rows))]
    # Cumulative-flag timeline: one series per (threat, mechanism) pair
    # that actually flagged something, stepped over the union of flag
    # timestamps.  flag_times is capped at emission, so late tails of
    # very chatty mechanisms flatten out -- the grid above has the
    # uncapped totals.
    series_times: dict[str, list[float]] = {}
    for c in cells:
        mechanisms = (getattr(c, "detection", None) or {}) \
            .get("mechanisms", {})
        for name, tally in mechanisms.items():
            times = tally.get("flag_times") or []
            if times:
                series_times[f"{c.threat_key}/{name}"] = list(times)
    if series_times:
        xs = sorted({t for times in series_times.values() for t in times})
        series = {name: [sum(1 for t in times if t <= x) for x in xs]
                  for name, times in sorted(series_times.items())}
        chart = svg_line_chart(xs, series, title="cumulative flags",
                               x_label="sim time [s]", y_label="flags")
        if chart:
            sections.append(("Detection timeline", chart))
    return sections


def _unit_section(run_report, trace_dir=None) -> tuple[str, str]:
    from repro.obs.trace import trace_filename

    rows = []
    for unit in run_report.units:
        trace: object = "-"
        if trace_dir is not None and not unit.cache_hit:
            name = trace_filename(unit.key)
            href = f"{_esc(str(trace_dir))}/{_esc(name)}"
            trace = RawHtml(f'<a href="{href}">{_esc(name[:12])}'
                            "&hellip;</a>")
        rows.append([unit.role, unit.threat_key, unit.variant,
                     unit.mechanism_key or "-",
                     (("hit", "hit") if unit.cache_hit
                      else ("computed", "miss")),
                     unit.source, _num(unit.wall_time), trace])
    return ("Per-unit timing and cache provenance",
            html_table(["role", "threat", "variant", "mechanism", "cache",
                        "source", "wall [s]", "trace"], rows))


def _cache_section(run_report) -> tuple[str, str]:
    units = len(run_report.units)
    ratio = run_report.cache_hits / units if units else 0.0
    rows = [["units", units], ["computed", run_report.computed],
            ["cache hits", run_report.cache_hits],
            ["cache-hit ratio", f"{ratio:.0%}"],
            ["workers", run_report.workers],
            ["wall time [s]", _num(run_report.wall_time)],
            ["episode time [s]", _num(run_report.episode_time)]]
    phase_rows = [[name, _num(seconds, 4)]
                  for name, seconds in run_report.phases.items()]
    body = html_table(["quantity", "value"], rows,
                      caption="cache + wall-clock summary")
    if phase_rows:
        body += html_table(["phase", "wall [s]"], phase_rows,
                           caption="runner phase breakdown")
    return ("Run summary", body)


def campaign_report(title: str, outcomes=(), cells=(), run_report=None,
                    trace_dir=None) -> str:
    """Render a catalogue and/or matrix campaign into one HTML page."""
    sections: list[tuple[str, str]] = []
    if outcomes:
        sections.append(_outcome_section(outcomes))
    if cells:
        sections.append(_matrix_section(cells))
        sections.extend(_detection_section(cells))
    if run_report is not None:
        sections.append(_cache_section(run_report))
        if run_report.units:
            sections.append(_unit_section(run_report, trace_dir))
    if not sections:
        sections.append(("", "<p>nothing to report: no outcomes, cells "
                             "or run report supplied.</p>"))
    return render_page(title, sections)


def _sweep_points_section(result) -> tuple[str, str]:
    rows = []
    for point in result.points:
        rows.append([
            point.label, point.replicates,
            _num(point.baseline["mean"]), _num(point.attacked["mean"]),
            (_num(point.impact_ratio["mean"], 2)
             if point.impact_ratio else "n/a"),
            _num(point.effect_rate, 2), _num(point.disband_rate, 2),
            _num(point.detection_rate, 2)])
    metric = result.points[0].metric if result.points else "metric"
    return (f"Sweep points ({_esc(metric)})",
            html_table(["point", "reps", "baseline", "attacked",
                        "impact ratio", "effect rate", "disband rate",
                        "detection rate"], rows))


def _dose_response_sections(result) -> list[tuple[str, str]]:
    curve = result.curve
    if curve is None:
        return []
    sections = []
    metric = result.points[0].metric if result.points else "metric"
    means = svg_line_chart(
        curve.xs,
        {"baseline": curve.series("baseline_mean"),
         "attacked": curve.series("attacked_mean"),
         "defended": curve.series("defended_mean")},
        title=f"{metric} vs {curve.axis}", x_label=curve.axis,
        y_label=metric)
    rates = svg_line_chart(
        curve.xs,
        {"effect rate": curve.series("effect_rate"),
         "disband rate": curve.series("disband_rate"),
         "detection rate": curve.series("detection_rate")},
        title=f"outcome rates vs {curve.axis}", x_label=curve.axis,
        y_label="rate")
    body = "".join(part for part in (means, rates) if part)
    if not body:
        body = ("<p>axis values are not numeric; see the points table "
                "above for the dose-response data.</p>")
    sections.append(("Dose-response curves", body))
    if result.thresholds:
        rows = [[t.response, _num(t.level),
                 ("never reached" if t.crossing is None
                  else _num(t.crossing))]
                for t in result.thresholds]
        sections.append(("Threshold estimates",
                         html_table(["response", "level",
                                     "first crossing"], rows)))
    return sections


def sweep_report(result, run_report=None, trace_dir=None) -> str:
    """Render a :class:`~repro.sweep.engine.SweepResult` into HTML."""
    spec = result.spec
    sections: list[tuple[str, str]] = []
    meta_rows = [["threat", spec.threat],
                 ["variant", spec.variant or "(default)"],
                 ["mechanism", spec.mechanism or "-"],
                 ["axes", ", ".join(axis.path for axis in spec.axes)],
                 ["seed replicates", spec.seed_replicates],
                 ["root seed", spec.root_seed],
                 ["episodes planned", result.episodes_planned]]
    sections.append(("Sweep specification",
                     html_table(["field", "value"], meta_rows)))
    sections.append(_sweep_points_section(result))
    sections.extend(_dose_response_sections(result))
    if run_report is not None:
        sections.append(_cache_section(run_report))
        if run_report.units:
            sections.append(_unit_section(run_report, trace_dir))
    return render_page(f"sweep {spec.name}", sections)


def write_report(path: Union[str, Path], document: str) -> Path:
    """Write a rendered report; unwritable targets raise ``ValueError``."""
    path = Path(path)
    try:
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(document, encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"report path {path} is not writable: "
                         f"{exc}") from None
    return path
