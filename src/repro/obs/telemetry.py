"""Run telemetry: a structured event bus for campaign execution.

While a campaign runs, the :class:`~repro.core.runner.CampaignRunner`
(and the sweep engine on top of it) emits typed progress events -- run
started/finished, unit started/finished with cache provenance and worker
id, phase transitions -- to a :class:`TelemetryBus`.  The bus fans each
event out to pluggable sinks:

* :class:`JsonlRunLogSink` -- one JSON line per event, written as the
  run progresses (the ``run-log.jsonl`` the CLI drops next to the
  episode cache);
* :class:`ProgressSink` -- a live one-line stderr progress display
  (units done, compute/cache split, rate, ETA) that auto-disables when
  the stream is not a TTY;
* any user sink implementing :class:`TelemetrySink`.

Telemetry is strictly observational and zero-cost when disabled: a
runner without a bus (or a bus without sinks) takes one predicate check
per event site and touches nothing else, so traces, cache entries and
campaign outcomes are byte-identical with telemetry on or off.

Determinism contract
--------------------
Event *payloads* split into stable fields (unit identity, cache source,
worker counts) and volatile fields (wall times, timestamps, worker
pids, sequence numbers).  :func:`canonical_events` projects the volatile
fields away and sorts records into a canonical order, so for a fixed
(spec, seed, workers) the canonical run log is byte-identical across
serial and parallel runs -- the same guarantee the trace layer provides
for episode bodies.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Union

RUN_LOG_FORMAT = "platoonsec-runlog/1"

#: Every event kind the bus accepts, in canonical sort order.
EVENT_KINDS = (
    "run_started",
    "phase_started",
    "phase_finished",
    "unit_started",
    "unit_finished",
    "run_finished",
)

#: Payload fields that describe scheduling/infrastructure rather than
#: work (wall clocks, pids, emission order, pool size, which result-
#: store backend served a record) and are stripped by
#: :func:`canonical_events`.  ``store`` is volatile by design: the CI
#: store-parity gate ``cmp``s a ``json:``-backed run's canonical log
#: against a ``sqlite:``-backed one.
VOLATILE_FIELDS = frozenset({"seq", "ts", "wall_time", "worker", "workers",
                             "store"})

_KIND_RANK = {kind: rank for rank, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed progress event: kind, emission order, wall clock, data."""

    kind: str
    seq: int
    ts: float
    payload: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        """Flat plain-JSON view (what the run-log sink writes)."""
        record = {"kind": self.kind, "seq": self.seq,
                  "ts": round(self.ts, 6)}
        record.update(self.payload)
        return record


class TelemetrySink:
    """Base sink: receives every event, closes with the bus."""

    def handle(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:                       # pragma: no cover - trivial
        pass


class TelemetryBus:
    """Fans typed run events out to zero or more sinks.

    With no sinks the bus is inert: :meth:`emit` returns immediately
    without allocating an event, so an always-constructed bus costs one
    truthiness check per event site.
    """

    def __init__(self, sinks: Sequence[TelemetrySink] = ()) -> None:
        self._sinks: List[TelemetrySink] = list(sinks)
        self._seq = 0

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def subscribe(self, sink: TelemetrySink) -> TelemetrySink:
        self._sinks.append(sink)
        return sink

    def emit(self, kind: str, **payload) -> Optional[TelemetryEvent]:
        """Emit one event to every sink; no-op without sinks."""
        if not self._sinks:
            return None
        if kind not in _KIND_RANK:
            raise ValueError(f"unknown telemetry event kind {kind!r}; "
                             f"expected one of {EVENT_KINDS}")
        event = TelemetryEvent(kind=kind, seq=self._seq, ts=time.time(),
                               payload=payload)
        self._seq += 1
        for sink in self._sinks:
            sink.handle(event)
        return event

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


# --------------------------------------------------------------------------
# Sinks
# --------------------------------------------------------------------------

class RecordingSink(TelemetrySink):
    """Keeps every event in memory (tests, ad-hoc introspection)."""

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        self.events.append(event)


class JsonlRunLogSink(TelemetrySink):
    """Streams events to a JSONL run log, one canonical line per event.

    The file is truncated at construction (one log per run), flushed per
    event so a crashed campaign still leaves its progress behind.  An
    unwritable path raises ``ValueError`` up front -- a user error,
    matching the runner's cache/trace-dir behaviour.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh: Optional[TextIO] = open(self.path, "w",
                                              encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"run log {self.path} is not writable: "
                             f"{exc}") from None

    def handle(self, event: TelemetryEvent) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event.to_record(), sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ProgressSink(TelemetrySink):
    """Live single-line progress display for interactive runs.

    Tracks units done vs planned, the computed/cache-hit split, the unit
    completion rate and an ETA, redrawn in place on ``unit_finished``.
    Auto-disabled when the stream is not a TTY (``enabled=None``), so
    piped and CI output stays clean; pass ``enabled=True`` to force.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 enabled: Optional[bool] = None,
                 min_interval: float = 0.1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self.min_interval = min_interval
        self._total = 0
        self._done = 0
        self._computed = 0
        self._hits = 0
        self._started: Optional[float] = None
        self._last_draw = 0.0
        self._last_width = 0

    def handle(self, event: TelemetryEvent) -> None:
        if not self.enabled:
            return
        if event.kind == "run_started":
            self._total += int(event.payload.get("distinct", 0))
            if self._started is None:
                self._started = event.ts
        elif event.kind == "unit_finished":
            self._done += 1
            if event.payload.get("cache_hit"):
                self._hits += 1
            else:
                self._computed += 1
            self._draw(event.ts)
        elif event.kind == "run_finished":
            self._draw(event.ts, force=True)
            self.stream.write("\n")
            self.stream.flush()

    def _draw(self, now: float, force: bool = False) -> None:
        if not force and now - self._last_draw < self.min_interval \
                and self._done < self._total:
            return
        self._last_draw = now
        # Zero-duration runs are real (an all-cache-hit batch can finish
        # within one clock tick, and clock skew can even make ``now``
        # precede ``run_started``): a degenerate elapsed must not
        # fabricate a billion-units/s rate or divide anything by ~0.
        elapsed = now - (self._started if self._started is not None
                         else now)
        rate = self._done / elapsed if elapsed > 1e-6 else None
        remaining = max(self._total - self._done, 0)
        rate_text = f"{rate:.1f}" if rate is not None else "?"
        eta = f"{remaining / rate:.0f}s" if rate else "?"
        hit_ratio = self._hits / self._done if self._done else 0.0
        line = (f"[campaign] {self._done}/{self._total} units | "
                f"{self._computed} computed, {self._hits} cache hits "
                f"({hit_ratio:.0%}) | {rate_text} unit/s | ETA {eta}")
        pad = max(self._last_width - len(line), 0)
        self._last_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()


# --------------------------------------------------------------------------
# Run-log reading and canonicalisation
# --------------------------------------------------------------------------

def load_run_log(path: Union[str, Path]) -> list[dict]:
    """Read a run log back as a list of flat event records."""
    records: list[dict] = []
    for i, line in enumerate(Path(path).read_text().splitlines()):
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") not in _KIND_RANK:
            raise ValueError(f"{path}:{i + 1}: unknown event kind "
                             f"{record.get('kind')!r}")
        records.append(record)
    return records


def canonical_events(records: Sequence[dict]) -> list[dict]:
    """Project volatile fields away and sort into a canonical order.

    The result is a pure function of what the campaign *did* (units,
    cache provenance, phases, worker count) -- not of scheduling -- so
    serial and parallel runs of the same work canonicalise identically.
    """
    stable = [{key: value for key, value in record.items()
               if key not in VOLATILE_FIELDS} for record in records]
    def sort_key(record: dict) -> tuple:
        return (str(record.get("unit") or ""),
                str(record.get("phase") or ""),
                _KIND_RANK.get(record.get("kind"), len(EVENT_KINDS)),
                json.dumps(record, sort_keys=True))
    return sorted(stable, key=sort_key)


def canonical_run_log_bytes(path: Union[str, Path]) -> bytes:
    """Canonical byte encoding of a run log (the byte-identity unit).

    Two runs of the same spec at the same seed and worker count produce
    equal canonical bytes regardless of scheduling, interleaving or wall
    clock -- CI can ``cmp`` them like trace bodies.
    """
    lines = [json.dumps(record, sort_keys=True, separators=(",", ":"))
             for record in canonical_events(load_run_log(path))]
    return ("\n".join(lines) + "\n").encode("utf-8")
