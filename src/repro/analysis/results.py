"""Persistence for campaign results.

Benches and the CLI produce :class:`~repro.core.metrics.ScenarioMetrics`,
:class:`~repro.core.campaign.ThreatOutcome` and
:class:`~repro.core.campaign.MatrixCell` records; this module serialises
them to JSON so campaigns can be archived, diffed across code versions,
and post-processed outside the simulator.

The format is versioned and self-describing::

    {
      "format": "platoonsec-results/1",
      "kind": "threat_catalogue",
      "records": [...]
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Union

from repro.core.campaign import MatrixCell, ThreatOutcome
from repro.core.metrics import ScenarioMetrics
from repro.sweep.aggregate import SweepPointSummary

FORMAT = "platoonsec-results/1"

_KINDS = {
    "threat_catalogue": ThreatOutcome,
    "defense_matrix": MatrixCell,
    "metrics": ScenarioMetrics,
    # Aggregated sweep points (repro.sweep): one record per grid point.
    "sweep_points": SweepPointSummary,
}


def _to_jsonable(record: Any) -> dict:
    if not dataclasses.is_dataclass(record):
        raise TypeError(f"cannot serialise {type(record).__name__}")
    out: dict[str, Any] = {}
    for field in dataclasses.fields(record):
        value = getattr(record, field.name)
        if isinstance(value, float) and value in (float("inf"), float("-inf")):
            value = None
        out[field.name] = value
    return out


def save_records(path: Union[str, Path], kind: str,
                 records: Iterable[Any]) -> Path:
    """Write a homogeneous record list to a JSON file."""
    if kind not in _KINDS:
        raise ValueError(f"unknown record kind {kind!r}; expected one of "
                         f"{sorted(_KINDS)}")
    expected = _KINDS[kind]
    payload = []
    for record in records:
        if not isinstance(record, expected):
            raise TypeError(f"kind {kind!r} expects {expected.__name__}, "
                            f"got {type(record).__name__}")
        payload.append(_to_jsonable(record))
    path = Path(path)
    path.write_text(json.dumps({"format": FORMAT, "kind": kind,
                                "records": payload}, indent=2))
    return path


def load_records(path: Union[str, Path]) -> tuple[str, list]:
    """Read a record file back into dataclass instances.

    Returns ``(kind, records)``.  Unknown formats or kinds raise
    ``ValueError`` rather than guessing.
    """
    data = json.loads(Path(path).read_text())
    if data.get("format") != FORMAT:
        raise ValueError(f"unsupported results format: {data.get('format')!r}")
    kind = data.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"unknown record kind {kind!r}")
    cls = _KINDS[kind]
    field_names = {f.name for f in dataclasses.fields(cls)}
    records = []
    for raw in data.get("records", []):
        unknown = set(raw) - field_names
        if unknown:
            raise ValueError(f"record has unknown fields {sorted(unknown)}")
        records.append(cls(**raw))
    return kind, records


def diff_catalogues(old: list, new: list,
                    tolerance: float = 0.15) -> list[str]:
    """Compare two threat-catalogue runs; report regressions.

    A regression is a threat whose effect flipped from present to absent,
    or whose attacked metric moved by more than ``tolerance`` (relative)
    in the direction of *less* attack impact -- the check a CI pipeline
    runs to catch silently weakened attacks.
    """
    old_by_key = {(o.threat_key, o.variant): o for o in old}
    problems: list[str] = []
    for outcome in new:
        key = (outcome.threat_key, outcome.variant)
        previous = old_by_key.get(key)
        if previous is None:
            continue
        if previous.effect_present and not outcome.effect_present:
            problems.append(f"{outcome.threat_key}/{outcome.variant}: effect "
                            "disappeared")
            continue
        prev_delta = abs(previous.attacked_value - previous.baseline_value)
        new_delta = abs(outcome.attacked_value - outcome.baseline_value)
        if prev_delta > 1e-9 and new_delta < prev_delta * (1.0 - tolerance):
            problems.append(
                f"{outcome.threat_key}/{outcome.variant}: impact shrank "
                f"{prev_delta:.3f} -> {new_delta:.3f}")
    return problems
