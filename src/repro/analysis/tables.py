"""Plain-text table rendering for bench output.

Every bench prints the rows it regenerates through :func:`format_table`,
so the terminal output reads like the paper's tables with measured columns
appended.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence


def _cell(value: Any, width: int) -> str:
    text = "" if value is None else str(value)
    # Control characters (newlines, tabs) would break row alignment.
    text = "".join(c if c.isprintable() else " " for c in text)
    if len(text) > width:
        text = text[:width - 1] + "…"
    return text.ljust(width)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 max_col_width: int = 44, title: Optional[str] = None) -> str:
    """Render rows as an ASCII table with column sizing and truncation."""
    rows = [list(r) for r in rows]
    n = len(headers)
    widths = [min(max_col_width, len(str(h))) for h in headers]
    for row in rows:
        for i in range(min(n, len(row))):
            text = "" if row[i] is None else str(row[i])
            widths[i] = min(max_col_width, max(widths[i], len(text)))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append("| " + " | ".join(_cell(h, w) for h, w in zip(headers, widths)) + " |")
    out.append(sep)
    for row in rows:
        padded = list(row) + [""] * (n - len(row))
        out.append("| " + " | ".join(_cell(c, w)
                                     for c, w in zip(padded, widths)) + " |")
    out.append(sep)
    return "\n".join(out)


def format_kv(record: dict, indent: str = "  ") -> str:
    """Render a flat dict as aligned key/value lines."""
    if not record:
        return f"{indent}(empty)"
    width = max(len(str(k)) for k in record)
    return "\n".join(f"{indent}{str(k).ljust(width)} : {v}"
                     for k, v in record.items())
