"""Reporting helpers: ASCII tables and experiment-record persistence."""

from repro.analysis.tables import format_table, format_kv
from repro.analysis.results import (
    diff_catalogues,
    load_records,
    save_records,
)

__all__ = ["format_table", "format_kv", "save_records", "load_records",
           "diff_catalogues"]
