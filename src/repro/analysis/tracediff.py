"""Trace comparison: find the first divergent event between two traces.

"Serial vs parallel bit-identical" and golden-regression failures are
opaque as bare asserts: *something* differed, somewhere in a 45-second
episode.  ``tracediff`` loads two JSONL traces (see
:mod:`repro.obs.trace`) and names the first record where they diverge --
the simulation time, record type and both payloads -- turning a failed
determinism check into an actionable pointer at the first misbehaving
component.

Exposed both as a library (:func:`diff_traces`, :func:`first_divergence`)
and through the CLI (``python -m repro tracediff A B``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.trace import load_trace


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def first_divergence(a: Sequence[dict], b: Sequence[dict]) -> Optional[int]:
    """Index of the first record where the two sequences differ.

    Records compare by canonical JSON (key order never matters).  If one
    sequence is a strict prefix of the other, the divergence index is
    the length of the shorter one.  ``None`` means identical.
    """
    for i, (ra, rb) in enumerate(zip(a, b)):
        if ra != rb and _canonical(ra) != _canonical(rb):
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


@dataclass
class TraceDiff:
    """Outcome of comparing two trace files."""

    path_a: str
    path_b: str
    n_records_a: int
    n_records_b: int
    headers_equal: bool
    index: Optional[int]          # first divergent record; None = identical
    record_a: Optional[dict] = None
    record_b: Optional[dict] = None

    @property
    def identical(self) -> bool:
        return self.index is None

    def format(self) -> str:
        if self.identical:
            note = "" if self.headers_equal else \
                " (headers differ; bodies agree)"
            return (f"traces identical: {self.n_records_a} records"
                    f"{note}\n  a: {self.path_a}\n  b: {self.path_b}")
        lines = [f"first divergence at record #{self.index} "
                 f"(of {self.n_records_a} vs {self.n_records_b})"]
        for label, record in (("a", self.record_a), ("b", self.record_b)):
            if record is None:
                lines.append(f"  {label}: <no record -- trace ended>")
            else:
                what = record.get("kind") or record.get("type")
                lines.append(f"  {label}: t={record.get('t')} {what} "
                             f"{_canonical(record)}")
        return "\n".join(lines)


def diff_traces(path_a: Union[str, Path],
                path_b: Union[str, Path]) -> TraceDiff:
    """Load two trace files and locate their first divergent record.

    Headers are compared informationally (different seeds *should* have
    different headers); the divergence index is over bodies only.
    """
    header_a, records_a = load_trace(path_a)
    header_b, records_b = load_trace(path_b)
    index = first_divergence(records_a, records_b)
    record_a = record_b = None
    if index is not None:
        record_a = records_a[index] if index < len(records_a) else None
        record_b = records_b[index] if index < len(records_b) else None
    return TraceDiff(path_a=str(path_a), path_b=str(path_b),
                     n_records_a=len(records_a), n_records_b=len(records_b),
                     headers_equal=(header_a == header_b),
                     index=index, record_a=record_a, record_b=record_b)
