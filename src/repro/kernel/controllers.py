"""Batched evaluation of the longitudinal control laws.

The vector kernel's control tick plans every vehicle's command (law +
:class:`~repro.platoon.controllers.ControllerInputs`) in the usual
per-vehicle phase-1 loop -- sensing draws RNG, so its order is part of
the deterministic episode -- and then evaluates all planned laws here in
one batch, grouped by law type and parameters.

Bit-exactness contract
----------------------
Each array formula mirrors the corresponding scalar ``compute`` method's
expression tree operation for operation.  The laws are pure float64
arithmetic plus ``min`` (and one ``sqrt`` over *law constants*, computed
once per group with the same ``math.sqrt`` the scalar law uses), all of
which are elementwise-identical between CPython floats and numpy -- so a
batched command is bit-identical to ``law.compute(inputs)``.  Laws this
module does not know (custom controllers satisfying the ``Controller``
protocol) fall back to their scalar ``compute``.
"""

from __future__ import annotations

import math
from dataclasses import fields
from typing import Optional, Sequence

import numpy as np

from repro.platoon.controllers import (
    AccController,
    Controller,
    ControllerInputs,
    CruiseController,
    PathCaccController,
    PloegCaccController,
)

Plan = "tuple[Controller, ControllerInputs]"


def _cruise_batch(law: CruiseController,
                  inputs: list[ControllerInputs]) -> np.ndarray:
    target = np.array([i.target_speed for i in inputs])
    own = np.array([i.own_speed for i in inputs])
    return law.k_speed * (target - own)


def _gap_rate_array(inputs: list[ControllerInputs]) -> np.ndarray:
    """Per-element ``gap_rate`` with the scalar laws' fallback chain."""
    out = np.empty(len(inputs))
    for i, inp in enumerate(inputs):
        if inp.gap_rate is not None:
            out[i] = inp.gap_rate
        elif inp.predecessor_speed is not None:
            out[i] = inp.predecessor_speed - inp.own_speed
        else:
            out[i] = 0.0
    return out


def _acc_batch(law: AccController,
               inputs: list[ControllerInputs]) -> np.ndarray:
    out = np.empty(len(inputs))
    with_gap = [i for i, inp in enumerate(inputs) if inp.gap is not None]
    without_gap = [i for i, inp in enumerate(inputs) if inp.gap is None]
    if without_gap:
        subset = [inputs[i] for i in without_gap]
        target = np.array([i.target_speed for i in subset])
        own = np.array([i.own_speed for i in subset])
        out[without_gap] = law.k_speed * (target - own)
    if with_gap:
        subset = [inputs[i] for i in with_gap]
        own = np.array([i.own_speed for i in subset])
        target = np.array([i.target_speed for i in subset])
        gap = np.array([i.gap for i in subset])
        factor = np.array([i.desired_gap_factor for i in subset])
        desired = (law.standstill + law.headway * own) * factor
        gap_error = gap - desired
        gap_rate = _gap_rate_array(subset)
        u_gap = law.k_gap * gap_error + law.k_rate * gap_rate
        u_cruise = law.k_speed * (target - own)
        out[with_gap] = np.minimum(u_gap, u_cruise)
    return out


def _require(inputs: list[ControllerInputs], names: Sequence[str],
             law_name: str, hint: str) -> None:
    for inp in inputs:
        if any(getattr(inp, name) is None for name in names):
            raise ValueError(f"{law_name} requires {hint}; "
                             "the vehicle should have degraded to ACC")


def _path_batch(law: PathCaccController,
                inputs: list[ControllerInputs]) -> np.ndarray:
    _require(inputs, ("gap", "predecessor_speed", "predecessor_accel",
                      "leader_speed", "leader_accel"),
             "PATH CACC", "full cooperative inputs")
    own = np.array([i.own_speed for i in inputs])
    gap = np.array([i.gap for i in inputs])
    factor = np.array([i.desired_gap_factor for i in inputs])
    pred_accel = np.array([i.predecessor_accel for i in inputs])
    lead_speed = np.array([i.leader_speed for i in inputs])
    lead_accel = np.array([i.leader_accel for i in inputs])
    desired = law.spacing * factor
    e = gap - desired
    e_dot = np.array([
        (i.gap_rate if i.gap_rate is not None
         else i.predecessor_speed - i.own_speed) for i in inputs])
    # Law constants use the same math.sqrt the scalar compute() does.
    root = math.sqrt(max(law.xi ** 2 - 1.0, 0.0))
    term_pred = (1.0 - law.c1) * pred_accel
    term_lead = law.c1 * lead_accel
    k_edot = (2.0 * law.xi - law.c1 * (law.xi + root)) * law.omega_n
    k_vlead = (law.xi + root) * law.omega_n * law.c1
    u = (term_pred + term_lead
         + k_edot * e_dot
         - k_vlead * (own - lead_speed)
         + law.omega_n ** 2 * e)
    return u


def _ploeg_batch(law: PloegCaccController,
                 inputs: list[ControllerInputs]) -> np.ndarray:
    _require(inputs, ("gap", "predecessor_speed", "predecessor_accel"),
             "Ploeg CACC", "predecessor inputs")
    own = np.array([i.own_speed for i in inputs])
    gap = np.array([i.gap for i in inputs])
    factor = np.array([i.desired_gap_factor for i in inputs])
    pred_accel = np.array([i.predecessor_accel for i in inputs])
    desired = (law.standstill + law.headway * own) * factor
    e = gap - desired
    e_dot = np.array([
        (i.gap_rate if i.gap_rate is not None
         else i.predecessor_speed - i.own_speed) for i in inputs])
    return pred_accel + law.k_p * e + law.k_d * e_dot


_VECTOR_LAWS = {
    CruiseController: _cruise_batch,
    AccController: _acc_batch,
    PathCaccController: _path_batch,
    PloegCaccController: _ploeg_batch,
}


def _group_key(law: Controller) -> Optional[tuple]:
    law_type = type(law)
    if law_type not in _VECTOR_LAWS:
        return None
    return (law_type,) + tuple(getattr(law, f.name) for f in fields(law))


def evaluate_commands(plans: list) -> list[float]:
    """Evaluate ``(law, inputs)`` plans, batched per law type+parameters.

    Returns one commanded acceleration per plan, in input order,
    bit-identical to evaluating each ``law.compute(inputs)`` in turn.
    """
    out: list[float] = [0.0] * len(plans)
    groups: dict[tuple, list[int]] = {}
    for i, (law, inputs) in enumerate(plans):
        key = _group_key(law)
        if key is None:   # unknown law: scalar fallback
            out[i] = law.compute(inputs)
            continue
        groups.setdefault(key, []).append(i)
    for key, indices in groups.items():
        law = plans[indices[0]][0]
        commands = _VECTOR_LAWS[key[0]](law, [plans[i][1] for i in indices])
        for i, command in zip(indices, commands):
            out[i] = float(command)
    return out
