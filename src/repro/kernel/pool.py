"""Bulk vehicle kinematics: ``(N,)`` state arrays stepped together.

The :class:`KinematicsPool` owns position/speed/acceleration/jerk (and
per-slot physical parameters) as numpy arrays.  Each vehicle holds a
:class:`PooledDynamics` facade over one slot, exposing the exact
``VehicleDynamics`` API -- so the rest of the stack (sensors, beacons,
metrics, attacks) is oblivious to which kernel is running.

Bit-exactness contract
----------------------
:meth:`KinematicsPool.step_slots` mirrors
:meth:`repro.platoon.dynamics.VehicleDynamics.step` expression by
expression.  Every operation is IEEE-754 add/mul/div/min/max (identical
elementwise in numpy and CPython floats) and the one transcendental --
the first-order-lag factor -- comes from the shared, cached
:func:`repro.platoon.dynamics.lag_alpha`, so scalar and bulk stepping
produce bit-identical trajectories.  The differential suite in
``tests/kernel/`` enforces this.

The pool also maintains a ``version`` counter, bumped on every state
write, which :class:`repro.platoon.world.World` uses to cache geometry
queries (predecessor maps) between control ticks.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

import numpy as np

from repro.obs import registry as obs
from repro.platoon.dynamics import (
    LongitudinalState,
    VehicleParams,
    lag_alpha,
)

_FloatArray = np.ndarray


class KinematicsPool:
    """Shared array storage for all pooled vehicles' longitudinal state."""

    def __init__(self, capacity: int = 16) -> None:
        capacity = max(capacity, 1)
        self._n = 0
        #: Bumped on every write to any slot's state; geometry caches in
        #: :class:`~repro.platoon.world.World` key on it.
        self.version = 0
        self.position = np.zeros(capacity)
        self.speed = np.zeros(capacity)
        self.acceleration = np.zeros(capacity)
        self.jerk = np.zeros(capacity)
        self.max_accel = np.zeros(capacity)
        self.max_decel = np.zeros(capacity)
        self.tau = np.zeros(capacity)
        self.max_speed = np.zeros(capacity)
        self._params: list[VehicleParams] = []
        self._alpha_cache: dict[float, _FloatArray] = {}

    def __len__(self) -> int:
        return self._n

    def _grow(self) -> None:
        new_cap = 2 * self.position.shape[0]
        for name in ("position", "speed", "acceleration", "jerk",
                     "max_accel", "max_decel", "tau", "max_speed"):
            old = getattr(self, name)
            fresh = np.zeros(new_cap)
            fresh[:old.shape[0]] = old
            setattr(self, name, fresh)

    def make_dynamics(self, params: VehicleParams,
                      initial: Optional[LongitudinalState] = None
                      ) -> "PooledDynamics":
        """Allocate a slot and return its ``VehicleDynamics``-shaped facade.

        Matches the ``VehicleDynamics(params, initial)`` constructor
        signature so it can be passed as a ``dynamics_factory``.
        """
        state = initial or LongitudinalState()
        if self._n == self.position.shape[0]:
            self._grow()
        slot = self._n
        self._n += 1
        self.position[slot] = state.position
        self.speed[slot] = state.speed
        self.acceleration[slot] = state.acceleration
        self.jerk[slot] = 0.0
        self.max_accel[slot] = params.max_accel
        self.max_decel[slot] = params.max_decel
        self.tau[slot] = params.tau
        self.max_speed[slot] = params.max_speed
        self._params.append(params)
        self._alpha_cache.clear()
        self.version += 1
        return PooledDynamics(self, slot, params)

    def _alphas(self, dt: float) -> _FloatArray:
        """Per-slot lag factors for a tick length, via the shared cache."""
        cached = self._alpha_cache.get(dt)
        if cached is None or cached.shape[0] != self._n:
            cached = np.array([lag_alpha(dt, p.tau) for p in self._params])
            self._alpha_cache[dt] = cached
        return cached

    def step_slots(self, dt: float,
                   idx: Union[Sequence[int], np.ndarray],
                   u: Union[Sequence[float], np.ndarray]) -> None:
        """Advance the selected slots by ``dt`` under commands ``u``.

        Expression-for-expression mirror of ``VehicleDynamics.step``;
        see the module docstring for the bit-exactness argument.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        idx = np.asarray(idx, dtype=np.intp)
        u = np.asarray(u, dtype=np.float64)
        obs.inc("dynamics.steps", int(idx.shape[0]))
        t0 = time.perf_counter() if obs.profiling_enabled() else None

        max_accel = self.max_accel[idx]
        max_decel = self.max_decel[idx]
        old_speed = self.speed[idx]
        old_accel = self.acceleration[idx]

        u = np.maximum(-max_decel, np.minimum(max_accel, u))

        # first-order actuation lag (exact discretisation)
        alpha = self._alphas(dt)[idx]
        new_accel = u + (old_accel - u) * alpha
        new_accel = np.maximum(-max_decel, np.minimum(max_accel, new_accel))

        new_speed = old_speed + new_accel * dt
        below = new_speed < 0.0
        if below.any():
            new_accel = np.where(below & (old_speed <= 0.0),
                                 np.maximum(new_accel, 0.0), new_accel)
            new_speed = np.where(below, 0.0, new_speed)
        max_speed = self.max_speed[idx]
        above = new_speed > max_speed
        if above.any():
            new_accel = np.where(above & (old_speed >= max_speed),
                                 np.minimum(new_accel, 0.0), new_accel)
            new_speed = np.where(above, max_speed, new_speed)

        avg_speed = 0.5 * (old_speed + new_speed)
        self.position[idx] = self.position[idx] + avg_speed * dt
        self.jerk[idx] = (new_accel - old_accel) / dt
        self.speed[idx] = new_speed
        self.acceleration[idx] = new_accel
        self.version += 1
        if t0 is not None:
            obs.observe("dynamics.step", time.perf_counter() - t0)


class _SlotState:
    """Live ``LongitudinalState``-shaped view of one pool slot.

    Mutating attributes writes straight through to the pool arrays (and
    bumps the pool version), matching how callers mutate the plain
    dataclass held by the scalar ``VehicleDynamics``.
    """

    __slots__ = ("_pool", "_slot")

    def __init__(self, pool: KinematicsPool, slot: int) -> None:
        object.__setattr__(self, "_pool", pool)
        object.__setattr__(self, "_slot", slot)

    @property
    def position(self) -> float:
        return float(self._pool.position[self._slot])

    @position.setter
    def position(self, value: float) -> None:
        self._pool.position[self._slot] = value
        self._pool.version += 1

    @property
    def speed(self) -> float:
        return float(self._pool.speed[self._slot])

    @speed.setter
    def speed(self, value: float) -> None:
        self._pool.speed[self._slot] = value
        self._pool.version += 1

    @property
    def acceleration(self) -> float:
        return float(self._pool.acceleration[self._slot])

    @acceleration.setter
    def acceleration(self, value: float) -> None:
        self._pool.acceleration[self._slot] = value
        self._pool.version += 1

    def __repr__(self) -> str:
        return (f"_SlotState(position={self.position}, speed={self.speed}, "
                f"acceleration={self.acceleration})")


class PooledDynamics:
    """``VehicleDynamics``-compatible facade over one pool slot."""

    def __init__(self, pool: KinematicsPool, slot: int,
                 params: VehicleParams) -> None:
        self.pool = pool
        self.slot = slot
        self.params = params
        self._state_view = _SlotState(pool, slot)

    @property
    def state(self) -> _SlotState:
        return self._state_view

    @state.setter
    def state(self, value) -> None:
        pool = self.pool
        pool.position[self.slot] = value.position
        pool.speed[self.slot] = value.speed
        pool.acceleration[self.slot] = value.acceleration
        pool.version += 1

    @property
    def position(self) -> float:
        return float(self.pool.position[self.slot])

    @property
    def speed(self) -> float:
        return float(self.pool.speed[self.slot])

    @property
    def acceleration(self) -> float:
        return float(self.pool.acceleration[self.slot])

    @property
    def last_jerk(self) -> float:
        """Jerk realised over the last step; comfort metric input."""
        return float(self.pool.jerk[self.slot])

    def clamp_command(self, u: float) -> float:
        return max(-self.params.max_decel, min(self.params.max_accel, u))

    def step(self, dt: float, u: float) -> _SlotState:
        """Single-slot step, routed through the bulk array path.

        Using :meth:`KinematicsPool.step_slots` even for one vehicle
        keeps every trajectory on exactly one code path per kernel.
        """
        self.pool.step_slots(dt, (self.slot,), (u,))
        return self._state_view
