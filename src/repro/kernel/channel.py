"""Batched radio-channel reception for the vector kernel.

:class:`VectorRadioChannel` subclasses the scalar
:class:`~repro.net.channel.RadioChannel` and overrides only the
stochastic reception path:

* In ``fading_streams="shared"`` mode it inherits the scalar per-receiver
  loop unchanged -- those draws come from the single simulator RNG in
  receiver order, so the loop *is* the random stream and cannot be
  reordered.  Shared-mode episodes are therefore trivially bit-identical
  across kernels.
* In ``fading_streams="pairwise"`` mode each ordered pair owns a
  counter-based stream (:mod:`repro.net.fading`), so one broadcast's
  fading, SINR and success decisions for all receivers are computed as
  single array expressions.  The scalar kernel evaluates the *same*
  numpy expressions one receiver at a time (length-1 arrays); numpy
  ufuncs are shape-consistent, so the two are bit-identical
  record-for-record (enforced by ``tests/kernel/``).

The class also exposes the deterministic ``(N, N)`` mean gain matrix for
all registered radios -- the fading-free received power between every
pair -- used by analysis tooling and property-tested against the scalar
``mean_received_power_dbm``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.net.channel import Message, RadioChannel, mw_to_dbm
from repro.net.fading import path_loss_db_array, success_probability_array
from repro.obs import registry as obs

if TYPE_CHECKING:
    from repro.net.radio import Radio


class VectorRadioChannel(RadioChannel):
    """Radio channel with batched (array-op) pairwise reception."""

    def _receiver_positions(self, receivers: list["Radio"]) -> np.ndarray:
        """Positions of ``receivers`` -- one array gather when all pooled.

        Pooled radios advertise their ``(pool, slot)``; when every
        receiver lives in the same pool the positions come from one
        fancy-index over the pool's position array (identical values to
        calling each ``position_fn``, which reads the same slot).  Any
        non-pooled radio (attacker platforms, RSUs) drops the batch to
        the per-receiver calls.
        """
        slots = [r.pool_slot for r in receivers]
        first = slots[0]
        if first is not None and all(
                s is not None and s[0] is first[0] for s in slots):
            return first[0].position[[s[1] for s in slots]]
        return np.array([r.position() for r in receivers])

    def _broadcast_pairwise(self, sender: "Radio", msg: Message,
                            duration: float, power: float) -> None:
        cfg = self.config
        pair_fading = self.pair_fading
        assert pair_fading is not None
        sender_pos = sender.position()
        receivers = [r for r in self.receivers_in_order()
                     if r is not sender and r.enabled]
        if not receivers:
            return
        positions = self._receiver_positions(receivers)
        distances = np.abs(positions - sender_pos)
        out_of_range = distances > cfg.max_range_m
        n_out = int(np.count_nonzero(out_of_range))
        self.stats.out_of_range += n_out
        if n_out:
            idx = np.nonzero(~out_of_range)[0]
            in_receivers = [receivers[i] for i in idx]
            in_distances = distances[idx]
            in_positions = positions[idx]
        else:
            in_receivers = receivers
            in_distances = distances
            in_positions = positions
        attempts = len(in_receivers)
        if attempts == 0:
            return
        self.stats.delivery_attempts += attempts

        fading_db, success_u = pair_fading.draw_batch(
            sender.node_id, [r.node_id for r in in_receivers])
        loss = path_loss_db_array(in_distances, cfg.reference_loss_db,
                                  cfg.path_loss_exponent, cfg.min_distance_m)
        rx_power_dbm = power - loss + fading_db

        noise_mw = self._noise_mw
        interference_mw = None
        # Same fast path as the scalar kernel's interference_mw_at: with no
        # jammers and no concurrent frame but the sender's own, every
        # receiver sees zero interference without any per-receiver calls.
        active = self._active
        all_quiet = (not self._interferers
                     and (not active
                          or (len(active) == 1 and active[0].sender is sender)))
        if all_quiet:
            sinr_db = rx_power_dbm - self._noise_only_dbm
        else:
            interference_mw = np.empty(attempts)
            denominator_dbm = np.empty(attempts)
            for j, receiver in enumerate(in_receivers):
                mw = self.interference_mw_at(float(in_positions[j]),
                                             exclude=sender)
                interference_mw[j] = mw
                denominator_dbm[j] = (self._noise_only_dbm if mw == 0.0
                                      else mw_to_dbm(noise_mw + mw))
            sinr_db = rx_power_dbm - denominator_dbm

        p_success = success_probability_array(sinr_db, cfg.sinr_threshold_db,
                                              cfg.per_steepness)
        success = success_u < p_success
        n_success = int(np.count_nonzero(success))

        if n_success:
            delays = duration + in_distances / cfg.propagation_speed
            schedule = self.sim.schedule
            for j in np.nonzero(success)[0]:
                schedule(float(delays[j]), in_receivers[j].deliver, msg)
            self.stats.delivered += n_success
            obs.inc("frames.delivered", n_success)
        n_lost = attempts - n_success
        if n_lost:
            if interference_mw is None:
                n_jammed = 0
            else:
                n_jammed = int(np.count_nonzero(
                    ~success & (interference_mw > noise_mw * 0.1)))
            if n_jammed:
                self.stats.lost_interference += n_jammed
                obs.inc("frames.jammed", n_jammed)
            if n_lost - n_jammed:
                self.stats.lost_noise += n_lost - n_jammed
                obs.inc("frames.lost_noise", n_lost - n_jammed)

    # --------------------------------------------------------------- analysis

    def mean_gain_matrix(self) -> tuple[list[str], np.ndarray]:
        """Deterministic ``(N, N)`` received-power matrix [dBm].

        Entry ``[i, j]`` is the fading-free power radio ``j`` would
        receive from radio ``i`` transmitting at its (or the config's)
        power -- i.e. ``mean_received_power_dbm`` for every ordered
        pair at once.  The diagonal is ``+inf`` (no self-path loss).
        """
        cfg = self.config
        radios = self.receivers_in_order()
        ids = [r.node_id for r in radios]
        positions = np.array([r.position() for r in radios])
        tx_power = np.array([
            r.tx_power_dbm if r.tx_power_dbm is not None else cfg.tx_power_dbm
            for r in radios])
        distances = np.abs(positions[:, None] - positions[None, :])
        loss = path_loss_db_array(distances, cfg.reference_loss_db,
                                  cfg.path_loss_exponent, cfg.min_distance_m)
        matrix = tx_power[:, None] - loss
        np.fill_diagonal(matrix, np.inf)
        return ids, matrix
