"""Vectorized simulation kernel.

``repro.kernel`` holds the numpy-backed implementations selected by
``ScenarioConfig(kernel="vector")``:

* :class:`~repro.kernel.pool.KinematicsPool` -- all vehicles' kinematics
  as ``(N,)`` arrays, stepped in bulk once per control tick behind the
  existing ``VehicleDynamics`` API (:class:`~repro.kernel.pool.PooledDynamics`).
* :func:`~repro.kernel.controllers.evaluate_commands` -- batched
  evaluation of the CACC/ACC/cruise control laws.
* :class:`~repro.kernel.channel.VectorRadioChannel` -- batched reception
  evaluation (path loss, per-pair fading, SINR, success) as array ops.

The contract for everything in this package is *bit-identical traces*
with the scalar kernel under the same config -- enforced record-by-record
by the differential suite in ``tests/kernel/``.  See EXPERIMENTS.md
("Choosing a kernel") for the equivalence and tolerance policy.
"""

from repro.kernel.channel import VectorRadioChannel
from repro.kernel.controllers import evaluate_commands
from repro.kernel.pool import KinematicsPool, PooledDynamics

__all__ = [
    "KinematicsPool",
    "PooledDynamics",
    "VectorRadioChannel",
    "evaluate_commands",
]
