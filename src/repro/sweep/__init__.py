"""``repro.sweep`` -- declarative parameter sweeps over the campaign engine.

The Table II/III campaigns measure every threat at one hand-picked
operating point; the paper's claims, however, are about *regimes*
(jamming disbands the platoon once the channel degrades enough, replay
destabilises only at the right command cadence).  This package turns the
one-shot campaigns into dose-response curves:

* :mod:`repro.sweep.spec` -- :class:`SweepSpec`/:class:`SweepAxis`: a
  declarative description of a sweep (threat, axes over any scenario /
  channel / vehicle field or ``attack.*``/``defense.*`` constructor
  parameter, grid or seeded-random sampling, seed replicates), JSON
  round-trip, and the shipped presets.
* :mod:`repro.sweep.engine` -- :class:`SweepEngine`: expands a spec into
  campaign units and fans them through
  :class:`~repro.core.runner.CampaignRunner`, so episode memoisation,
  worker pools, traces and the metrics registry all apply per point.
* :mod:`repro.sweep.aggregate` -- replicate aggregation (mean/std/min/max
  per point), dose-response curve extraction and the first-crossing
  threshold finder.
* :mod:`repro.sweep.artifacts` -- the versioned ``platoonsec-sweep/1``
  JSON artifact plus a flat CSV, both byte-deterministic for a fixed
  spec + root seed regardless of worker count or cache warmth.
"""

from repro.sweep.spec import (  # noqa: F401
    PRESETS,
    SweepAxis,
    SweepSpec,
    Threshold,
    load_sweep_spec,
)
from repro.sweep.engine import (  # noqa: F401
    SweepEngine,
    SweepResult,
    expand_points,
    run_sweep,
)
from repro.sweep.aggregate import (  # noqa: F401
    DoseResponseCurve,
    SweepPointSummary,
    ThresholdEstimate,
    first_crossing,
    summary_stats,
)
from repro.sweep.artifacts import (  # noqa: F401
    SWEEP_FORMAT,
    sweep_artifact,
    write_sweep_artifacts,
)
