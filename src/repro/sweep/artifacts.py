"""Sweep artifacts: versioned JSON plus a flat CSV.

The JSON artifact is self-describing and versioned::

    {
      "format": "platoonsec-sweep/1",
      "spec": {...},                  # the resolved SweepSpec
      "points": [...],               # SweepPointSummary per point
      "dose_response": {...} | null, # single-axis sweeps only
      "thresholds": [...]
    }

Byte-determinism is part of the contract: everything in the artifact is
derived from (spec, root seed) -- no wall clocks, no hostnames, keys
sorted -- so a workers=8 warm-cache run and a serial cold run of the
same spec write *identical bytes*, and CI can ``cmp`` them.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:
    from repro.sweep.engine import SweepResult

SWEEP_FORMAT = "platoonsec-sweep/1"


def sweep_artifact(result: "SweepResult") -> dict:
    """The plain-JSON artifact payload for a sweep result."""
    return {
        "format": SWEEP_FORMAT,
        "name": result.spec.name,
        "spec": result.spec.to_dict(),
        "points": [dataclasses.asdict(p) for p in result.points],
        "dose_response": (dataclasses.asdict(result.curve)
                          if result.curve is not None else None),
        "thresholds": [dataclasses.asdict(t) for t in result.thresholds],
    }


def artifact_bytes(result: "SweepResult") -> bytes:
    """Canonical JSON encoding (sorted keys, fixed separators)."""
    return (json.dumps(sweep_artifact(result), sort_keys=True, indent=1)
            + "\n").encode("utf-8")


def load_sweep_artifact(path: Union[str, Path]) -> dict:
    """Read an artifact back; unknown formats raise ``ValueError``."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != SWEEP_FORMAT:
        raise ValueError("unsupported sweep artifact format: "
                         f"{data.get('format')!r}")
    return data


def _csv_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def sweep_csv(result: "SweepResult") -> str:
    """Flat per-point CSV: axis columns, then the aggregate columns."""
    axis_paths = [axis.path for axis in result.spec.axes]
    header = (["point", *axis_paths, "replicates", "metric"]
              + [f"{role}_{stat}" for role in ("baseline", "attacked")
                 for stat in ("mean", "std", "min", "max")]
              + ["defended_mean", "defended_std",
                 "impact_ratio_mean", "impact_ratio_std",
                 "effect_rate", "collision_mean", "disband_rate",
                 "detection_rate"])
    lines = [",".join(header)]
    for point in result.points:
        row = [point.index]
        row.extend(point.values.get(path) for path in axis_paths)
        row.extend([point.replicates, point.metric])
        for stats in (point.baseline, point.attacked):
            row.extend(stats[s] for s in ("mean", "std", "min", "max"))
        row.extend([point.defended["mean"] if point.defended else None,
                    point.defended["std"] if point.defended else None,
                    point.impact_ratio["mean"] if point.impact_ratio else None,
                    point.impact_ratio["std"] if point.impact_ratio else None,
                    point.effect_rate,
                    point.collisions.get("mean"),
                    point.disband_rate,
                    point.detection_rate])
        lines.append(",".join(_csv_cell(cell) for cell in row))
    return "\n".join(lines) + "\n"


def write_sweep_artifacts(result: "SweepResult",
                          out_dir: Union[str, Path]) -> dict[str, Path]:
    """Write ``<name>.sweep.json`` + ``<name>.sweep.csv`` into a directory.

    Returns ``{"json": path, "csv": path}``.  The directory is created;
    an unwritable target raises ``ValueError`` (a user error, matching
    the runner's cache/trace-dir behaviour).
    """
    out_dir = Path(out_dir)
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        json_path = out_dir / f"{result.spec.name}.sweep.json"
        csv_path = out_dir / f"{result.spec.name}.sweep.csv"
        json_path.write_bytes(artifact_bytes(result))
        csv_path.write_text(sweep_csv(result))
    except OSError as exc:
        raise ValueError(f"sweep output dir {out_dir} is not writable: "
                         f"{exc}") from None
    return {"json": json_path, "csv": csv_path}
