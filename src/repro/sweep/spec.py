"""Declarative sweep specifications.

A :class:`SweepSpec` names one Table II threat experiment and a set of
:class:`SweepAxis` parameter axes to vary it over.  Axis paths are
dotted::

    scenario.<field>   -- any ScenarioConfig field  (bare names work too)
    channel.<field>    -- a ChannelConfig field
    vehicle.<field>    -- a VehicleConfig field
    highway.<field>    -- a HighwayConfig field (needs a highway base)
    attack.<param>     -- an attribute of the experiment's attack(s)
    defense.<param>    -- an attribute of the defence stack (defended sweeps)

Axes sample either an explicit ``values`` grid or ``n`` seeded-random
draws from ``[low, high]`` (optionally log-spaced); random draws derive
their RNG seed from the sweep root seed and the axis path, so the
expansion is a pure function of the spec.  ``seed_replicates=N`` runs
every point at N derived seeds, replicate 0 reusing the campaign's
canonical ``derive_seed(root, threat, variant)`` stream so an N=1 sweep
point is byte-for-byte the same episode a plain catalogue runs.

Specs round-trip through plain JSON (:meth:`SweepSpec.to_dict` /
:meth:`SweepSpec.from_dict`, :func:`load_sweep_spec`); unknown keys and
malformed axes are rejected with explicit errors rather than guessed at.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core import taxonomy
from repro.core.runner import derive_seed
from repro.core.scenario import ScenarioConfig
from repro.highway.config import HighwayConfig
from repro.net.channel import ChannelConfig
from repro.platoon.vehicle import VehicleConfig

#: Optional ``format`` tag a spec file may carry for self-description.
SPEC_FORMAT = "platoonsec-sweepspec/1"

#: Root seed used when neither the spec nor the caller provides one.
DEFAULT_ROOT_SEED = 42

_CONFIG_FIELDS = {
    "scenario": {f.name for f in dataclasses.fields(ScenarioConfig)},
    "channel": {f.name for f in dataclasses.fields(ChannelConfig)},
    "vehicle": {f.name for f in dataclasses.fields(VehicleConfig)},
    "highway": {f.name for f in dataclasses.fields(HighwayConfig)},
}

_SAMPLINGS = ("grid", "random")


def split_path(path: str) -> tuple[str, str]:
    """Split a dotted axis path into ``(target, attribute)``.

    Bare field names are scenario fields: ``"duration"`` is shorthand
    for ``"scenario.duration"``.
    """
    target, dot, attr = path.partition(".")
    if not dot:
        return "scenario", target
    return target, attr


def _validate_path(path: str) -> None:
    target, attr = split_path(path)
    if target in _CONFIG_FIELDS:
        if attr not in _CONFIG_FIELDS[target]:
            raise ValueError(
                f"axis path {path!r}: {target} config has no field "
                f"{attr!r} (known: {sorted(_CONFIG_FIELDS[target])})")
        if (target, attr) == ("scenario", "seed"):
            raise ValueError("axis path 'scenario.seed' is reserved; use "
                             "root_seed/seed_replicates to vary seeds")
        return
    if target in ("attack", "defense"):
        if not attr:
            raise ValueError(f"axis path {path!r} names no parameter")
        return
    raise ValueError(
        f"axis path {path!r}: unknown target {target!r} (expected "
        "scenario/channel/vehicle/highway/attack/defense)")


def _component_attrs(threat: str, variant: Optional[str],
                     mechanism: Optional[str], target: str) -> set:
    """Settable attributes the sweep's live components expose.

    Resolved through the component registry from the experiment's
    catalogued attack components (or the mechanism's defence stack), so
    axis paths are validated against the real constructor/attribute
    schema instead of failing deep inside a worker.
    """
    from repro.core.registry import REGISTRY
    from repro.experiments import defense_stack, experiment_spec

    attrs: set = set()
    if target == "attack":
        for component in experiment_spec(threat, variant).attacks:
            attrs |= REGISTRY.settable_attrs("attack", component.key)
    else:
        for component in defense_stack(mechanism).defenses:
            attrs |= REGISTRY.settable_attrs("defense", component.key)
    return attrs


def _validate_component_axis(axis_path: str, threat: str,
                             variant: Optional[str],
                             mechanism: Optional[str]) -> None:
    target, attr = split_path(axis_path)
    valid = _component_attrs(threat, variant, mechanism, target)
    if attr not in valid:
        subject = (f"threat {threat!r}" if target == "attack"
                   else f"mechanism {mechanism!r}")
        raise ValueError(
            f"axis path {axis_path!r}: no {target} component of {subject} "
            f"has a settable attribute {attr!r} (known: {sorted(valid)})")


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: an explicit grid or seeded-random samples."""

    path: str
    values: tuple = ()
    sampling: str = "grid"          # "grid" | "random"
    low: Optional[float] = None
    high: Optional[float] = None
    n: int = 0
    log: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        _validate_path(self.path)
        if self.sampling not in _SAMPLINGS:
            raise ValueError(f"axis {self.path!r}: unknown sampling "
                             f"{self.sampling!r}; expected one of {_SAMPLINGS}")
        if self.sampling == "grid":
            if not self.values:
                raise ValueError(f"axis {self.path!r}: grid sampling needs a "
                                 "non-empty 'values' list")
        else:
            if self.values:
                raise ValueError(f"axis {self.path!r}: random sampling takes "
                                 "low/high/n, not explicit values")
            if self.low is None or self.high is None or self.low >= self.high:
                raise ValueError(f"axis {self.path!r}: random sampling needs "
                                 "low < high")
            if self.n < 1:
                raise ValueError(f"axis {self.path!r}: random sampling needs "
                                 "n >= 1")
            if self.log and self.low <= 0:
                raise ValueError(f"axis {self.path!r}: log sampling needs "
                                 "low > 0")

    def resolve(self, root_seed: int) -> tuple:
        """The concrete axis values for a root seed, ascending for random
        draws so dose-response curves read left to right."""
        if self.sampling == "grid":
            return self.values
        rng = random.Random(derive_seed(root_seed, "sweep-axis", self.path))
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            draws = [math.exp(rng.uniform(lo, hi)) for _ in range(self.n)]
        else:
            draws = [rng.uniform(self.low, self.high) for _ in range(self.n)]
        return tuple(sorted(draws))

    def to_dict(self) -> dict:
        out: dict = {"path": self.path, "sampling": self.sampling}
        if self.sampling == "grid":
            out["values"] = list(self.values)
        else:
            out.update(low=self.low, high=self.high, n=self.n, log=self.log)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SweepAxis":
        if not isinstance(data, dict):
            raise ValueError("axis entry must be an object, got "
                             f"{type(data).__name__}")
        known = {"path", "values", "sampling", "low", "high", "n", "log"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"axis has unknown keys {sorted(unknown)}")
        if "path" not in data:
            raise ValueError("axis needs a 'path'")
        kwargs = dict(data)
        kwargs["values"] = tuple(kwargs.get("values", ()))
        return cls(**kwargs)


@dataclass(frozen=True)
class Threshold:
    """A first-crossing query against a dose-response curve."""

    response: str
    level: float

    def to_dict(self) -> dict:
        return {"response": self.response, "level": self.level}

    @classmethod
    def from_dict(cls, data: dict) -> "Threshold":
        unknown = set(data) - {"response", "level"}
        if unknown:
            raise ValueError(f"threshold has unknown keys {sorted(unknown)}")
        if "response" not in data or "level" not in data:
            raise ValueError("threshold needs 'response' and 'level'")
        return cls(response=str(data["response"]),
                   level=float(data["level"]))


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter sweep over one threat experiment."""

    name: str
    threat: str
    axes: tuple = ()
    variant: Optional[str] = None
    mechanism: Optional[str] = None
    seed_replicates: int = 1
    root_seed: Optional[int] = None
    base: dict = field(default_factory=dict)   # ScenarioConfig overrides
    metric: Optional[str] = None               # headline-metric override
    thresholds: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "thresholds", tuple(self.thresholds))
        if not self.name:
            raise ValueError("sweep needs a name")
        if self.threat not in taxonomy.THREATS:
            raise ValueError(f"unknown threat {self.threat!r}; expected one "
                             f"of {sorted(taxonomy.THREATS)}")
        if self.mechanism is not None and self.mechanism not in taxonomy.MECHANISMS:
            raise ValueError(f"unknown mechanism {self.mechanism!r}; expected "
                             f"one of {sorted(taxonomy.MECHANISMS)}")
        if not self.axes:
            raise ValueError("sweep needs at least one axis")
        paths = [axis.path for axis in self.axes]
        if len(set(paths)) != len(paths):
            raise ValueError(f"duplicate axis paths in {paths}")
        if self.seed_replicates < 1:
            raise ValueError("seed_replicates must be >= 1")
        unknown = set(self.base) - _CONFIG_FIELDS["scenario"]
        if unknown:
            raise ValueError("base overrides name unknown ScenarioConfig "
                             f"fields {sorted(unknown)}")
        if self.variant is not None:
            # Unknown variants raise ValueError naming the valid ones.
            from repro.experiments import experiment_spec

            experiment_spec(self.threat, self.variant)
        for axis in self.axes:
            target, attr = split_path(axis.path)
            if target == "defense" and self.mechanism is None:
                raise ValueError(f"axis {axis.path!r} needs a 'mechanism'")
            if target in ("attack", "defense"):
                _validate_component_axis(axis.path, self.threat,
                                         self.variant, self.mechanism)

    # ------------------------------------------------------------- plumbing

    def resolved(self, root_seed: Optional[int] = None,
                 seed_replicates: Optional[int] = None,
                 base_defaults: Optional[dict] = None) -> "SweepSpec":
        """A copy with root seed / replicates / base defaults filled in.

        Spec-file values win over ``base_defaults`` (the CLI's
        ``--vehicles/--duration`` flags); an explicit ``seed_replicates``
        argument wins over the spec (the CLI's ``--seed-replicates``).
        """
        base = dict(base_defaults or {})
        base.update(self.base)
        root = self.root_seed
        if root is None:
            root = root_seed if root_seed is not None else DEFAULT_ROOT_SEED
        replicates = (seed_replicates if seed_replicates is not None
                      else self.seed_replicates)
        return dataclasses.replace(self, root_seed=root, base=base,
                                   seed_replicates=replicates)

    def to_dict(self) -> dict:
        """Canonical plain-JSON view (what the artifact embeds)."""
        return {
            "format": SPEC_FORMAT,
            "name": self.name,
            "threat": self.threat,
            "variant": self.variant,
            "mechanism": self.mechanism,
            "axes": [axis.to_dict() for axis in self.axes],
            "seed_replicates": self.seed_replicates,
            "root_seed": self.root_seed,
            "base": dict(sorted(self.base.items())),
            "metric": self.metric,
            "thresholds": [t.to_dict() for t in self.thresholds],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ValueError("sweep spec must be an object, got "
                             f"{type(data).__name__}")
        data = dict(data)
        fmt = data.pop("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValueError(f"unsupported sweep spec format {fmt!r}; "
                             f"expected {SPEC_FORMAT!r}")
        known = {"name", "threat", "variant", "mechanism", "axes",
                 "seed_replicates", "root_seed", "base", "metric",
                 "thresholds"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"sweep spec has unknown keys {sorted(unknown)}")
        if "name" not in data or "threat" not in data:
            raise ValueError("sweep spec needs 'name' and 'threat'")
        axes = tuple(SweepAxis.from_dict(a) for a in data.get("axes", ()))
        thresholds = tuple(Threshold.from_dict(t)
                           for t in data.get("thresholds", ()))
        return cls(name=data["name"], threat=data["threat"],
                   variant=data.get("variant"),
                   mechanism=data.get("mechanism"), axes=axes,
                   seed_replicates=int(data.get("seed_replicates", 1)),
                   root_seed=data.get("root_seed"),
                   base=dict(data.get("base", {})),
                   metric=data.get("metric"), thresholds=thresholds)


def load_sweep_spec(path: Union[str, Path]) -> SweepSpec:
    """Parse a sweep spec JSON file; malformed content raises ValueError."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"sweep spec {path} is not valid JSON: {exc}") from None
    return SweepSpec.from_dict(data)


# --------------------------------------------------------------------------
# Shipped presets
# --------------------------------------------------------------------------

#: Canonical sweeps, runnable as ``python -m repro sweep <name>``.  They
#: deliberately leave duration/vehicle-count to the base defaults so CI
#: can run them tiny while the full-size invocation stays one flag away.
PRESETS: dict[str, SweepSpec] = {
    # §V-B: jammer power from irrelevant to platoon-disbanding.  The
    # dose-response curve is the paper's "all savings are lost" claim as
    # a measured threshold instead of a single 30 dBm point.
    "jamming-intensity": SweepSpec(
        name="jamming-intensity",
        threat="jamming",
        axes=(SweepAxis("attack.power_dbm",
                        values=(-10.0, 0.0, 10.0, 20.0, 30.0)),),
        seed_replicates=3,
        thresholds=(Threshold("disband_rate", 0.5),
                    Threshold("attacked_mean", 0.5)),
    ),
    # Channel quality sweep under the replay experiment: how much
    # ambient loss the gap-command replay needs before its impact on
    # gap_open_time washes out (or compounds).
    "channel-loss": SweepSpec(
        name="channel-loss",
        threat="replay",
        axes=(SweepAxis("channel.noise_floor_dbm",
                        values=(-95.0, -91.0, -87.0, -83.0)),),
        seed_replicates=2,
        thresholds=(Threshold("impact_ratio_mean", 1.2),),
    ),
    # §V-A.2: ghost-vehicle count vs roster inflation -- how many Sybil
    # identities it takes to saturate the membership cap.
    "sybil-count": SweepSpec(
        name="sybil-count",
        threat="sybil",
        axes=(SweepAxis("attack.n_ghosts", values=(1, 2, 4, 6, 8)),),
        seed_replicates=2,
        thresholds=(Threshold("attacked_mean", 1.5),),
    ),
    # Highway spectrum contention: background traffic density (vehicles
    # per km) vs delivery ratio on a two-platoon merge scenario, with a
    # merge-point jammer as the attack.  The baseline curve is the
    # shared-spectrum cost of density alone; the attacked curve adds the
    # jammer on top.  The default barrage-30dBm variant carries no
    # config overrides, so the axis-set highway values survive intact.
    "traffic-density": SweepSpec(
        name="traffic-density",
        threat="jamming",
        axes=(SweepAxis("highway.background_density",
                        values=(0.0, 2.0, 4.0, 8.0, 12.0)),),
        base={"highway": {
            "lanes": 2,
            "platoons": [
                {"n_vehicles": 3, "lane": 0, "start_position": 1120.0},
                {"n_vehicles": 3, "lane": 0, "start_position": 1000.0,
                 "speed": 29.0},
            ],
            "merge_policy": "auto"}},
        metric="packet_delivery_ratio",
        seed_replicates=2,
        thresholds=(Threshold("baseline_mean", 0.9),),
    ),
}
