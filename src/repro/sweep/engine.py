"""Sweep execution: spec -> campaign units -> aggregated result.

The :class:`SweepEngine` is a thin planner on top of
:class:`~repro.core.runner.CampaignRunner`: it expands a
:class:`~repro.sweep.spec.SweepSpec` into per-point, per-replicate
:class:`~repro.core.runner.EpisodeSpec` units and hands the whole batch
to the runner, so episode memoisation, the worker pool, persistent
caches and traces all apply per sweep point.  Two structural dividends
of that reuse:

* points that vary only ``attack.*`` parameters share one baseline
  episode per replicate (identical config + seed -> identical content
  hash -> memoised), so a 5-point jamming sweep with 3 replicates costs
  3 baselines, not 15;
* sweep results are exactly as deterministic as campaign results --
  the aggregate artifact is a pure function of (spec, root seed),
  regardless of worker count or cache warmth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional

from repro.core.campaign import make_defenses, threat_experiment
from repro.core.runner import (
    CampaignRunner,
    EpisodeSpec,
    derive_replicate_seed,
)
from repro.core.scenario import ScenarioConfig
from repro.net.channel import ChannelConfig
from repro.obs import registry as obs
from repro.platoon.vehicle import VehicleConfig
from repro.sweep import aggregate
from repro.sweep.spec import SweepSpec, split_path


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: concrete values for every axis, in axis order."""

    index: int
    label: str
    values: tuple                   # ((path, value), ...)


@dataclass
class PlannedReplicate:
    replicate: int
    seed: int
    baseline: EpisodeSpec
    attacked: EpisodeSpec
    defended: Optional[EpisodeSpec] = None


@dataclass
class PlannedPoint:
    point: SweepPoint
    metric: str
    lower_is_better: bool
    replicates: list = field(default_factory=list)

    def specs(self) -> list[EpisodeSpec]:
        out: list[EpisodeSpec] = []
        for rep in self.replicates:
            out.append(rep.baseline)
            out.append(rep.attacked)
            if rep.defended is not None:
                out.append(rep.defended)
        return out


@dataclass
class SweepResult:
    """Everything a sweep produced (wall-clock-free, artifact-ready)."""

    spec: SweepSpec
    points: list                    # list[SweepPointSummary]
    curve: Optional[aggregate.DoseResponseCurve]
    thresholds: list                # list[ThresholdEstimate]

    @property
    def episodes_planned(self) -> int:
        roles = 2 if self.spec.mechanism is None else 3
        return len(self.points) * self.spec.seed_replicates * roles


def _fmt_axis_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def expand_points(spec: SweepSpec) -> list[SweepPoint]:
    """Cartesian grid over the spec's resolved axes, in axis order."""
    root = spec.root_seed
    if root is None:
        raise ValueError("expand_points needs a resolved spec "
                         "(root_seed set); call spec.resolved() first")
    per_axis = [axis.resolve(root) for axis in spec.axes]
    points: list[SweepPoint] = []
    for index, combo in enumerate(itertools.product(*per_axis)):
        values = tuple(zip((axis.path for axis in spec.axes), combo))
        label = ",".join(f"{path}={_fmt_axis_value(value)}"
                         for path, value in values)
        points.append(SweepPoint(index=index, label=label, values=values))
    return points


def _build_base_config(base: dict) -> ScenarioConfig:
    """ScenarioConfig from a spec's plain-JSON base overrides.

    ``channel``/``vehicle`` entries may be nested dicts (the JSON view)
    or already-built config objects.
    """
    overrides = dict(base)
    if isinstance(overrides.get("channel"), dict):
        overrides["channel"] = ChannelConfig(**overrides["channel"])
    if isinstance(overrides.get("vehicle"), dict):
        overrides["vehicle"] = VehicleConfig(**overrides["vehicle"])
    for name in ("rsu_positions",):
        if isinstance(overrides.get(name), list):
            overrides[name] = tuple(overrides[name])
    return ScenarioConfig().with_overrides(**overrides)


class SweepEngine:
    """Plans and executes sweeps through a campaign runner."""

    def __init__(self, runner: Optional[CampaignRunner] = None, *,
                 workers: int = 1, cache_dir=None, store=None,
                 trace_dir=None, telemetry=None) -> None:
        self.runner = runner if runner is not None else CampaignRunner(
            workers=workers, cache_dir=cache_dir, store=store,
            trace_dir=trace_dir, telemetry=telemetry)

    def _emit_phase(self, phase: str, finished: bool = False,
                    **payload) -> None:
        """Sweep-level phase transitions ride the runner's event bus."""
        bus = self.runner.telemetry
        if bus is not None:
            bus.emit("phase_finished" if finished else "phase_started",
                     phase=phase, **payload)

    # ------------------------------------------------------------- planning

    def plan(self, spec: SweepSpec) -> list[PlannedPoint]:
        """Expand a resolved spec into runnable campaign units."""
        spec = spec.resolved()
        base_cfg = _build_base_config(spec.base)
        requirements: dict = {}
        if spec.mechanism is not None:
            _, requirements = make_defenses(spec.mechanism)
        points = expand_points(spec)
        planned: list[PlannedPoint] = []
        for point in points:
            scenario_over: dict = {}
            channel_over: dict = {}
            vehicle_over: dict = {}
            highway_over: dict = {}
            attack_over: list[tuple] = []
            defended_over: list[tuple] = []
            for path, value in point.values:
                target, attr = split_path(path)
                if target == "scenario":
                    scenario_over[attr] = value
                elif target == "channel":
                    channel_over[attr] = value
                elif target == "vehicle":
                    vehicle_over[attr] = value
                elif target == "highway":
                    highway_over[attr] = value
                elif target == "attack":
                    attack_over.append((path, value))
                    defended_over.append((path, value))
                else:                                   # defense.*
                    defended_over.append((path, value))
            point_cfg = base_cfg.with_overrides(**scenario_over)
            if channel_over:
                point_cfg = point_cfg.with_overrides(
                    channel=dc_replace(point_cfg.channel, **channel_over))
            if vehicle_over:
                point_cfg = point_cfg.with_overrides(
                    vehicle=dc_replace(point_cfg.vehicle, **vehicle_over))
            if highway_over:
                if point_cfg.highway is None:
                    raise ValueError(
                        "highway.* axes need a highway scenario; set a "
                        "'highway' section in the sweep's base config")
                point_cfg = point_cfg.with_overrides(
                    highway=dc_replace(point_cfg.highway, **highway_over))
            experiment = threat_experiment(spec.threat, point_cfg,
                                           variant=spec.variant)
            metric = spec.metric or experiment.metric_name
            plan = PlannedPoint(point=point, metric=metric,
                                lower_is_better=experiment.lower_is_better)
            for rep in range(spec.seed_replicates):
                seed = derive_replicate_seed(spec.root_seed, spec.threat,
                                             experiment.variant, rep)
                config = experiment.config.with_overrides(seed=seed,
                                                          **requirements)
                baseline = EpisodeSpec(spec.threat, experiment.variant,
                                       "baseline", config)
                attacked = EpisodeSpec(spec.threat, experiment.variant,
                                       "attacked", config,
                                       overrides=tuple(attack_over))
                defended = None
                if spec.mechanism is not None:
                    defended = EpisodeSpec(spec.threat, experiment.variant,
                                           "defended", config, spec.mechanism,
                                           overrides=tuple(defended_over))
                plan.replicates.append(PlannedReplicate(
                    replicate=rep, seed=seed, baseline=baseline,
                    attacked=attacked, defended=defended))
            planned.append(plan)
        return planned

    # ------------------------------------------------------------ execution

    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute a sweep end to end and aggregate the replicates."""
        spec = spec.resolved()
        self._emit_phase("sweep.plan")
        with obs.timed("sweep.plan"):
            planned = self.plan(spec)
            specs = [s for plan in planned for s in plan.specs()]
        self._emit_phase("sweep.plan", finished=True)
        records = self.runner.run(specs)
        self._emit_phase("sweep.aggregate")
        with obs.timed("sweep.aggregate"):
            summaries = []
            for plan in planned:
                baseline = [records[rep.baseline.key]
                            for rep in plan.replicates]
                attacked = [records[rep.attacked.key]
                            for rep in plan.replicates]
                defended = ([records[rep.defended.key]
                             for rep in plan.replicates]
                            if spec.mechanism is not None else ())
                summaries.append(aggregate.summarise_point(
                    plan.point.index, plan.point.label,
                    dict(plan.point.values), plan.metric,
                    plan.lower_is_better, baseline, attacked, defended))
            curve = (aggregate.dose_response(spec.axes[0].path, summaries)
                     if len(spec.axes) == 1 else None)
            thresholds = aggregate.estimate_thresholds(curve, spec.thresholds)
        self._emit_phase("sweep.aggregate", finished=True)
        return SweepResult(spec=spec, points=summaries, curve=curve,
                           thresholds=thresholds)


def run_sweep(spec: SweepSpec, *, workers: int = 1, cache_dir=None,
              store=None, trace_dir=None, telemetry=None,
              runner: Optional[CampaignRunner] = None) -> SweepResult:
    """One-call sweep: build an engine, run, aggregate."""
    engine = SweepEngine(runner=runner, workers=workers,
                         cache_dir=cache_dir, store=store,
                         trace_dir=trace_dir, telemetry=telemetry)
    return engine.run(spec)
