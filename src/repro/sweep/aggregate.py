"""Replicate aggregation and dose-response analysis for sweeps.

Pure functions over :class:`~repro.core.runner.EpisodeRecord` batches:
no wall clocks, no dict-order dependence, so the same records aggregate
to the same bytes regardless of worker count or cache warmth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

#: Tolerance below which a baseline counts as zero for ratio purposes.
_EPS = 1e-9

#: The per-point responses a dose-response curve exposes (curve name ->
#: how it is read off a :class:`SweepPointSummary`).
RESPONSES = (
    "baseline_mean",
    "attacked_mean",
    "defended_mean",
    "impact_ratio_mean",
    "effect_rate",
    "collision_mean",
    "disband_rate",
    "detection_rate",
    "merge_rate",
)


def summary_stats(values: Sequence[float]) -> dict:
    """``{"mean", "std", "min", "max"}`` over a replicate value list.

    ``std`` is the population standard deviation (0.0 for a single
    replicate), so N=1 sweeps degrade gracefully to point estimates.
    """
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("summary_stats needs at least one value")
    mean = sum(vals) / len(vals)
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return {"mean": mean, "std": math.sqrt(var),
            "min": min(vals), "max": max(vals)}


@dataclass
class SweepPointSummary:
    """Aggregated replicates of one sweep point.

    ``baseline``/``attacked``/``defended`` are :func:`summary_stats`
    dicts of the experiment's headline metric; the rates are fractions
    of replicates (attacked episode) showing the respective outcome.
    """

    index: int
    label: str
    values: dict
    replicates: int
    metric: str
    baseline: dict
    attacked: dict
    defended: Optional[dict] = None
    impact_ratio: Optional[dict] = None
    effect_rate: float = 0.0
    collisions: dict = field(default_factory=dict)
    disband_rate: float = 0.0
    detection_rate: float = 0.0
    # Fraction of attacked replicates completing >= 1 platoon merge
    # (always 0.0 outside highway scenarios).
    merge_rate: float = 0.0

    def response(self, name: str) -> Optional[float]:
        """Read one named dose-response value off this point."""
        if name == "baseline_mean":
            return self.baseline["mean"]
        if name == "attacked_mean":
            return self.attacked["mean"]
        if name == "defended_mean":
            return self.defended["mean"] if self.defended else None
        if name == "impact_ratio_mean":
            return self.impact_ratio["mean"] if self.impact_ratio else None
        if name == "effect_rate":
            return self.effect_rate
        if name == "collision_mean":
            return self.collisions.get("mean")
        if name == "disband_rate":
            return self.disband_rate
        if name == "detection_rate":
            return self.detection_rate
        if name == "merge_rate":
            return self.merge_rate
        raise ValueError(f"unknown response {name!r}; expected one of "
                         f"{RESPONSES}")


def summarise_point(index: int, label: str, values: dict, metric: str,
                    lower_is_better: bool,
                    baseline_records: Sequence, attacked_records: Sequence,
                    defended_records: Sequence = ()) -> SweepPointSummary:
    """Aggregate one point's replicate records into a summary."""
    if len(baseline_records) != len(attacked_records) or not baseline_records:
        raise ValueError("need equal, non-empty baseline/attacked replicate "
                         "record lists")
    base_vals = [r.extract_metric(metric) for r in baseline_records]
    atk_vals = [r.extract_metric(metric) for r in attacked_records]
    ratios = [a / b for a, b in zip(atk_vals, base_vals) if abs(b) > _EPS]
    if lower_is_better:
        effects = [a > b + _EPS for a, b in zip(atk_vals, base_vals)]
    else:
        effects = [a < b - _EPS for a, b in zip(atk_vals, base_vals)]
    n = len(attacked_records)
    return SweepPointSummary(
        index=index, label=label, values=dict(values), replicates=n,
        metric=metric,
        baseline=summary_stats(base_vals),
        attacked=summary_stats(atk_vals),
        defended=(summary_stats([r.extract_metric(metric)
                                 for r in defended_records])
                  if defended_records else None),
        impact_ratio=summary_stats(ratios) if ratios else None,
        effect_rate=sum(effects) / n,
        collisions=summary_stats([r.metrics.get("collisions", 0)
                                  for r in attacked_records]),
        disband_rate=sum(1 for r in attacked_records
                         if r.metrics.get("disbands", 0) > 0) / n,
        detection_rate=sum(1 for r in attacked_records
                           if r.metrics.get("detections", 0) > 0) / n,
        merge_rate=sum(1 for r in attacked_records
                       if r.metrics.get("merges_completed", 0) > 0) / n,
    )


# --------------------------------------------------------------------------
# Dose-response curves
# --------------------------------------------------------------------------

@dataclass
class DoseResponseCurve:
    """Responses along one swept axis (single-axis sweeps only)."""

    axis: str
    xs: list
    responses: dict                 # response name -> list aligned with xs

    def series(self, name: str) -> list:
        if name not in self.responses:
            raise ValueError(f"unknown response {name!r}; curve has "
                             f"{sorted(self.responses)}")
        return self.responses[name]


@dataclass
class ThresholdEstimate:
    """Where (if anywhere) a response first crosses a level."""

    response: str
    level: float
    crossing: Optional[float]


def dose_response(axis_path: str,
                  summaries: Sequence[SweepPointSummary]) -> DoseResponseCurve:
    """Build the axis-value -> responses curve from point summaries.

    Points are ordered by their axis value (numeric where possible) so
    grid order does not matter.
    """
    def axis_value(summary: SweepPointSummary) -> Any:
        if axis_path not in summary.values:
            raise ValueError(f"point {summary.label!r} has no value for "
                             f"axis {axis_path!r}")
        return summary.values[axis_path]

    ordered = sorted(summaries, key=lambda s: (_sort_key(axis_value(s)),
                                               s.index))
    xs = [axis_value(s) for s in ordered]
    responses = {name: [s.response(name) for s in ordered]
                 for name in RESPONSES}
    return DoseResponseCurve(axis=axis_path, xs=xs, responses=responses)


def _sort_key(value: Any) -> tuple:
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, float(value))
    return (1, str(value))


def _finite(value) -> Optional[float]:
    """``value`` as a finite float, or ``None`` when it is missing,
    non-numeric, a bool, NaN or infinite."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def first_crossing(xs: Sequence[float], ys: Sequence[Optional[float]],
                   level: float) -> Optional[float]:
    """First axis value at which the response reaches ``level``.

    Scans left to right; a crossing between two points is linearly
    interpolated.  Returns ``None`` when the response never reaches the
    level.

    Edge cases are pinned by ``tests/property/test_prop_aggregate.py``:

    * a point whose x or y is missing (``None``), non-numeric, NaN or
      infinite breaks the series -- no interpolation spans the gap, and
      an at-level point right after a gap (including a *leading* gap)
      is returned exactly;
    * trailing gaps after a crossing are unreachable and change nothing;
    * non-monotone series return the **first** reach, even if the
      response later dips below the level again;
    * the result is always either ``None`` or a finite value between
      the bracketing points -- never NaN.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    prev_x: Optional[float] = None
    prev_y: Optional[float] = None
    for raw_x, raw_y in zip(xs, ys):
        x, y = _finite(raw_x), _finite(raw_y)
        if x is None or y is None:
            prev_x, prev_y = None, None
            continue
        if y >= level:
            if prev_y is None or prev_y >= level:
                return x
            # Interpolate between the last sub-level point and this one.
            span = y - prev_y
            frac = (level - prev_y) / span if abs(span) > _EPS else 1.0
            return prev_x + (x - prev_x) * frac
        prev_x, prev_y = x, y
    return None


def estimate_thresholds(curve: Optional[DoseResponseCurve],
                        thresholds: Sequence) -> list[ThresholdEstimate]:
    """Evaluate the spec's threshold queries against a curve."""
    out: list[ThresholdEstimate] = []
    for threshold in thresholds:
        crossing = None
        if curve is not None:
            crossing = first_crossing(curve.xs,
                                      curve.series(threshold.response),
                                      threshold.level)
        out.append(ThresholdEstimate(response=threshold.response,
                                     level=threshold.level,
                                     crossing=crossing))
    return out
